package cfg

import (
	"strings"
	"testing"

	"falseshare/internal/lang/ast"
	"falseshare/internal/lang/parser"
)

func parseFn(t *testing.T, src string) *ast.File {
	t.Helper()
	f, err := parser.Parse(src)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	return f
}

func TestBuildStraightLine(t *testing.T) {
	f := parseFn(t, `
shared int x;
void main() {
    x = 1;
    x = 2;
    x = 3;
}
`)
	g := Build(f.Func("main"))
	// Entry, Exit, and a single basic node holding all three stores.
	var basics []*Node
	for _, n := range g.Nodes {
		if n.Kind == Basic && len(n.Stmts) > 0 {
			basics = append(basics, n)
		}
	}
	if len(basics) != 1 || len(basics[0].Stmts) != 3 {
		t.Fatalf("expected one basic node with 3 stmts:\n%s", g.Dump())
	}
	if len(g.Entry.Succs) != 1 {
		t.Fatalf("entry successors: %d", len(g.Entry.Succs))
	}
}

func TestBuildIfElse(t *testing.T) {
	f := parseFn(t, `
shared int x;
void main() {
    if (pid == 0) {
        x = 1;
    } else {
        x = 2;
    }
    x = 3;
}
`)
	g := Build(f.Func("main"))
	var branch *Node
	for _, n := range g.Nodes {
		if n.Kind == Branch {
			branch = n
		}
	}
	if branch == nil {
		t.Fatalf("no branch node:\n%s", g.Dump())
	}
	if len(branch.Succs) != 2 {
		t.Fatalf("branch should have 2 successors, has %d", len(branch.Succs))
	}
	if got := ast.PrintExpr(branch.Cond); got != "pid == 0" {
		t.Errorf("cond = %q", got)
	}
	// Both arms must have BranchDepth 1.
	for _, s := range branch.Succs {
		if s.BranchDepth != 1 {
			t.Errorf("arm branch depth = %d, want 1", s.BranchDepth)
		}
	}
}

func TestBuildLoopsDepth(t *testing.T) {
	f := parseFn(t, `
shared int a[100];
void main() {
    for (int i = 0; i < 10; i = i + 1) {
        for (int j = 0; j < 10; j = j + 1) {
            a[i] = a[i] + j;
        }
    }
    while (a[0] > 0) {
        a[0] = a[0] - 1;
    }
}
`)
	g := Build(f.Func("main"))
	maxDepth := 0
	for _, n := range g.Nodes {
		if n.LoopDepth > maxDepth {
			maxDepth = n.LoopDepth
		}
	}
	if maxDepth != 2 {
		t.Fatalf("max loop depth = %d, want 2:\n%s", maxDepth, g.Dump())
	}
	// Every loop back edge must exist: each branch node with a loop
	// body must have at least two predecessors (entry + back edge).
	branches := 0
	for _, n := range g.Nodes {
		if n.Kind == Branch {
			branches++
			if len(n.Preds) < 2 {
				t.Errorf("loop head n%d has %d preds, want >= 2", n.ID, len(n.Preds))
			}
		}
	}
	if branches != 3 {
		t.Errorf("branch nodes = %d, want 3", branches)
	}
}

func TestBarrierNodes(t *testing.T) {
	f := parseFn(t, `
shared int x;
void main() {
    x = 1;
    barrier;
    x = 2;
    barrier;
    x = 3;
}
`)
	g := Build(f.Func("main"))
	if got := len(g.Barriers()); got != 2 {
		t.Fatalf("barriers = %d, want 2", got)
	}
}

func TestReturnEndsFlow(t *testing.T) {
	f := parseFn(t, `
int f(int a) {
    if (a > 0) {
        return 1;
    }
    return 0;
}
void main() { f(1); }
`)
	g := Build(f.Func("f"))
	if len(g.Exit.Preds) != 2 {
		t.Fatalf("exit preds = %d, want 2:\n%s", len(g.Exit.Preds), g.Dump())
	}
}

func TestCallGraph(t *testing.T) {
	f := parseFn(t, `
shared int x;
int leaf(int a) { return a + 1; }
int mid(int a) { return leaf(a) + leaf(a); }
void main() {
    x = mid(1);
    for (int i = 0; i < 10; i = i + 1) {
        x = leaf(x);
    }
}
`)
	cg := BuildProgram(f)
	if len(cg.Graphs) != 3 {
		t.Fatalf("graphs = %d", len(cg.Graphs))
	}
	if !cg.Callees["main"]["mid"] || !cg.Callees["mid"]["leaf"] {
		t.Fatalf("callees wrong: %s", cg.Dump())
	}
	order := cg.BottomUpOrder("main")
	idx := map[string]int{}
	for i, n := range order {
		idx[n] = i
	}
	if !(idx["leaf"] < idx["mid"] && idx["mid"] < idx["main"]) {
		t.Fatalf("bottom-up order wrong: %v", order)
	}
	if cg.Recursive("main") {
		t.Errorf("program wrongly reported recursive")
	}
	// The call inside the loop should be on a node with LoopDepth 1.
	found := false
	for _, s := range cg.SitesIn("main") {
		if s.Callee == "leaf" && s.Node.LoopDepth == 1 {
			found = true
		}
	}
	if !found {
		t.Errorf("loop-nested call site not found at depth 1")
	}
}

func TestRecursionDetected(t *testing.T) {
	f := parseFn(t, `
int f(int a) {
    if (a == 0) { return 0; }
    return f(a - 1);
}
void main() { f(3); }
`)
	cg := BuildProgram(f)
	if !cg.Recursive("main") {
		t.Fatalf("recursion not detected")
	}
	// BottomUpOrder must still terminate and include both functions.
	order := cg.BottomUpOrder("main")
	if len(order) != 2 {
		t.Fatalf("order = %v", order)
	}
}

func TestDumpContainsStatements(t *testing.T) {
	f := parseFn(t, `
shared int x;
void main() { x = 42; }
`)
	g := Build(f.Func("main"))
	if !strings.Contains(g.Dump(), "x = 42") {
		t.Errorf("dump missing statement:\n%s", g.Dump())
	}
}
