package cfg

import (
	"testing"

	"falseshare/internal/lang/ast"
)

func TestReachableStopsAtBarriers(t *testing.T) {
	f := parseFn(t, `
shared int a;
void main() {
    a = 1;
    barrier;
    a = 2;
    barrier;
    a = 3;
}
`)
	g := Build(f.Func("main"))
	isBarrier := func(n *Node) bool { return n.Kind == Barrier }

	region := g.Reachable(g.Entry, isBarrier)
	// The first region must contain the a=1 node, the first barrier
	// (frontier), but not the a=2 node.
	var firstAssign, secondAssign *Node
	for _, n := range g.Nodes {
		for _, s := range n.Stmts {
			switch PrintishStmt(s) {
			case "a = 1;":
				firstAssign = n
			case "a = 2;":
				secondAssign = n
			}
		}
	}
	if firstAssign == nil || secondAssign == nil {
		t.Fatalf("assign nodes not found:\n%s", g.Dump())
	}
	if !region[firstAssign] {
		t.Errorf("first region misses a=1")
	}
	if region[secondAssign] {
		t.Errorf("first region must stop at the barrier")
	}

	// From the first barrier: reaches a=2 but not a=3.
	b1 := g.Barriers()[0]
	region2 := g.Reachable(b1, isBarrier)
	if !region2[secondAssign] {
		t.Errorf("second region misses a=2")
	}
}

func TestReachableThroughLoop(t *testing.T) {
	f := parseFn(t, `
shared int a;
void main() {
    for (int i = 0; i < 3; i = i + 1) {
        a = a + 1;
        barrier;
    }
    a = 9;
}
`)
	g := Build(f.Func("main"))
	isBarrier := func(n *Node) bool { return n.Kind == Barrier }
	b := g.Barriers()[0]
	region := g.Reachable(b, isBarrier)
	// From the in-loop barrier, control flows around the loop back to
	// a=a+1 and out to a=9, stopping at the barrier itself.
	sawBody, sawAfter := false, false
	for n := range region {
		for _, s := range n.Stmts {
			switch PrintishStmt(s) {
			case "a = a + 1;":
				sawBody = true
			case "a = 9;":
				sawAfter = true
			}
		}
	}
	if !sawBody || !sawAfter {
		t.Errorf("loop region: body=%v after=%v", sawBody, sawAfter)
	}
}

// PrintishStmt renders a statement in canonical single-line form for
// test matching.
func PrintishStmt(s ast.Stmt) string { return ast.PrintStmt(s) }
