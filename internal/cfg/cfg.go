// Package cfg builds per-function control-flow graphs and the program
// call graph for parc programs.
//
// The graphs drive three consumers in the restructurer:
//   - per-process control-flow analysis (stage 1) annotates nodes with
//     the set of processes that execute them;
//   - non-concurrency analysis (stage 2) partitions the graph of main
//     into phases at barrier nodes;
//   - static profiling weights side effects by loop and branch nesting
//     recorded on each node.
package cfg

import (
	"fmt"
	"strings"

	"falseshare/internal/lang/ast"
)

// NodeKind distinguishes the roles a CFG node can play.
type NodeKind int

const (
	// Basic nodes hold straight-line statements.
	Basic NodeKind = iota
	// Branch nodes evaluate a condition; successor 0 is taken when the
	// condition is true, successor 1 when it is false.
	Branch
	// Barrier nodes mark global barrier synchronization points. They
	// delimit the phases found by non-concurrency analysis.
	Barrier
	// Entry and Exit are the unique function entry/exit nodes.
	Entry
	Exit
)

func (k NodeKind) String() string {
	switch k {
	case Basic:
		return "basic"
	case Branch:
		return "branch"
	case Barrier:
		return "barrier"
	case Entry:
		return "entry"
	case Exit:
		return "exit"
	}
	return "node?"
}

// Node is a control-flow graph node.
type Node struct {
	ID    int
	Kind  NodeKind
	Stmts []ast.Stmt // Basic: simple statements (assign/decl/expr/acquire/release/return)
	Cond  ast.Expr   // Branch: the condition
	// CondStmt is the statement the branch condition came from (an
	// *ast.IfStmt, *ast.WhileStmt or *ast.ForStmt).
	CondStmt ast.Stmt
	// Barrier is the barrier statement for Barrier nodes.
	Barrier *ast.BarrierStmt

	Succs []*Node
	Preds []*Node

	// LoopDepth is the number of enclosing loops; BranchDepth the
	// number of enclosing conditionals. Static profiling estimates a
	// node's execution frequency as LoopWeight^LoopDepth *
	// BranchWeight^BranchDepth.
	LoopDepth   int
	BranchDepth int
}

func (n *Node) addSucc(s *Node) {
	n.Succs = append(n.Succs, s)
	s.Preds = append(s.Preds, n)
}

// Graph is the CFG of one function.
type Graph struct {
	Fn    *ast.FuncDecl
	Nodes []*Node
	Entry *Node
	Exit  *Node
	// StmtNode maps every simple statement to the node holding it and
	// every control statement to its branch node.
	StmtNode map[ast.Stmt]*Node
}

// Build constructs the CFG for a function.
func Build(fn *ast.FuncDecl) *Graph {
	b := &builder{
		g: &Graph{Fn: fn, StmtNode: map[ast.Stmt]*Node{}},
	}
	b.g.Entry = b.newNode(Entry)
	b.g.Exit = b.newNode(Exit)
	last := b.stmts(b.g.Entry, fn.Body.List, 0, 0)
	if last != nil {
		last.addSucc(b.g.Exit)
	}
	return b.g
}

type builder struct {
	g *Graph
}

func (b *builder) newNode(kind NodeKind) *Node {
	n := &Node{ID: len(b.g.Nodes), Kind: kind}
	b.g.Nodes = append(b.g.Nodes, n)
	return n
}

// stmts threads the statement list from pred and returns the node that
// falls through to whatever follows (nil if control cannot fall
// through, e.g. after an unconditional return).
func (b *builder) stmts(pred *Node, list []ast.Stmt, loopDepth, branchDepth int) *Node {
	cur := pred
	for _, s := range list {
		if cur == nil {
			// Unreachable code after a return: still build nodes so
			// analyses see the statements, but do not connect them.
			cur = b.newNode(Basic)
			cur.LoopDepth = loopDepth
			cur.BranchDepth = branchDepth
		}
		cur = b.stmt(cur, s, loopDepth, branchDepth)
	}
	return cur
}

// stmt adds statement s after pred and returns the fall-through node.
func (b *builder) stmt(pred *Node, s ast.Stmt, loopDepth, branchDepth int) *Node {
	switch x := s.(type) {
	case *ast.BlockStmt:
		return b.stmts(pred, x.List, loopDepth, branchDepth)

	case *ast.BarrierStmt:
		n := b.newNode(Barrier)
		n.Barrier = x
		n.LoopDepth = loopDepth
		n.BranchDepth = branchDepth
		b.g.StmtNode[s] = n
		pred.addSucc(n)
		return n

	case *ast.IfStmt:
		br := b.newNode(Branch)
		br.Cond = x.Cond
		br.CondStmt = x
		br.LoopDepth = loopDepth
		br.BranchDepth = branchDepth
		b.g.StmtNode[s] = br
		pred.addSucc(br)

		thenEntry := b.newNode(Basic)
		thenEntry.LoopDepth = loopDepth
		thenEntry.BranchDepth = branchDepth + 1
		br.addSucc(thenEntry)
		thenExit := b.stmt(thenEntry, x.Then, loopDepth, branchDepth+1)

		join := b.newNode(Basic)
		join.LoopDepth = loopDepth
		join.BranchDepth = branchDepth
		if x.Else != nil {
			elseEntry := b.newNode(Basic)
			elseEntry.LoopDepth = loopDepth
			elseEntry.BranchDepth = branchDepth + 1
			br.addSucc(elseEntry)
			elseExit := b.stmt(elseEntry, x.Else, loopDepth, branchDepth+1)
			if elseExit != nil {
				elseExit.addSucc(join)
			}
		} else {
			br.addSucc(join)
		}
		if thenExit != nil {
			thenExit.addSucc(join)
		}
		if len(join.Preds) == 0 {
			return nil // both arms returned
		}
		return join

	case *ast.WhileStmt:
		br := b.newNode(Branch)
		br.Cond = x.Cond
		br.CondStmt = x
		br.LoopDepth = loopDepth
		br.BranchDepth = branchDepth
		b.g.StmtNode[s] = br
		pred.addSucc(br)

		bodyEntry := b.newNode(Basic)
		bodyEntry.LoopDepth = loopDepth + 1
		bodyEntry.BranchDepth = branchDepth
		br.addSucc(bodyEntry)
		bodyExit := b.stmt(bodyEntry, x.Body, loopDepth+1, branchDepth)
		if bodyExit != nil {
			bodyExit.addSucc(br)
		}

		out := b.newNode(Basic)
		out.LoopDepth = loopDepth
		out.BranchDepth = branchDepth
		br.addSucc(out)
		return out

	case *ast.ForStmt:
		cur := pred
		if x.Init != nil {
			cur = b.stmt(cur, x.Init, loopDepth, branchDepth)
		}
		br := b.newNode(Branch)
		br.Cond = x.Cond // may be nil: infinite loop
		br.CondStmt = x
		br.LoopDepth = loopDepth
		br.BranchDepth = branchDepth
		b.g.StmtNode[s] = br
		cur.addSucc(br)

		bodyEntry := b.newNode(Basic)
		bodyEntry.LoopDepth = loopDepth + 1
		bodyEntry.BranchDepth = branchDepth
		br.addSucc(bodyEntry)
		bodyExit := b.stmt(bodyEntry, x.Body, loopDepth+1, branchDepth)
		if x.Post != nil {
			if bodyExit == nil {
				bodyExit = b.newNode(Basic)
				bodyExit.LoopDepth = loopDepth + 1
				bodyExit.BranchDepth = branchDepth
			}
			bodyExit = b.stmt(bodyExit, x.Post, loopDepth+1, branchDepth)
		}
		if bodyExit != nil {
			bodyExit.addSucc(br)
		}

		out := b.newNode(Basic)
		out.LoopDepth = loopDepth
		out.BranchDepth = branchDepth
		if x.Cond != nil {
			br.addSucc(out)
		}
		return out

	case *ast.ReturnStmt:
		n := b.appendSimple(pred, s, loopDepth, branchDepth)
		n.addSucc(b.g.Exit)
		return nil

	default:
		// Simple statement: decl, assign, expr, acquire, release.
		return b.appendSimple(pred, s, loopDepth, branchDepth)
	}
}

// appendSimple adds a simple statement to pred if pred is an open Basic
// node with matching depths, otherwise starts a new node.
func (b *builder) appendSimple(pred *Node, s ast.Stmt, loopDepth, branchDepth int) *Node {
	n := pred
	if n.Kind != Basic || len(n.Succs) > 0 || n.LoopDepth != loopDepth || n.BranchDepth != branchDepth {
		n = b.newNode(Basic)
		n.LoopDepth = loopDepth
		n.BranchDepth = branchDepth
		pred.addSucc(n)
	}
	n.Stmts = append(n.Stmts, s)
	b.g.StmtNode[s] = n
	return n
}

// Barriers returns the barrier nodes of the graph in creation order.
func (g *Graph) Barriers() []*Node {
	var out []*Node
	for _, n := range g.Nodes {
		if n.Kind == Barrier {
			out = append(out, n)
		}
	}
	return out
}

// Reachable returns the set of nodes reachable from start without
// crossing any node for which stop returns true (start itself is
// always included; stop nodes are not expanded but are included when
// reached, so callers can see the region's frontier).
func (g *Graph) Reachable(start *Node, stop func(*Node) bool) map[*Node]bool {
	seen := map[*Node]bool{start: true}
	work := []*Node{start}
	for len(work) > 0 {
		n := work[len(work)-1]
		work = work[:len(work)-1]
		if stop(n) && n != start {
			continue
		}
		for _, s := range n.Succs {
			if !seen[s] {
				seen[s] = true
				work = append(work, s)
			}
		}
	}
	return seen
}

// Dump renders the graph for debugging and golden tests.
func (g *Graph) Dump() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "cfg %s:\n", g.Fn.Name)
	for _, n := range g.Nodes {
		fmt.Fprintf(&sb, "  n%d %s ld=%d bd=%d ->", n.ID, n.Kind, n.LoopDepth, n.BranchDepth)
		for _, s := range n.Succs {
			fmt.Fprintf(&sb, " n%d", s.ID)
		}
		if n.Cond != nil {
			fmt.Fprintf(&sb, " cond=%s", ast.PrintExpr(n.Cond))
		}
		for _, s := range n.Stmts {
			fmt.Fprintf(&sb, "\n      %s", strings.ReplaceAll(ast.PrintStmt(s), "\n", " "))
		}
		sb.WriteByte('\n')
	}
	return sb.String()
}
