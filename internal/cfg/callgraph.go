package cfg

import (
	"fmt"
	"sort"
	"strings"

	"falseshare/internal/lang/ast"
)

// CallSite records one static call.
type CallSite struct {
	Caller string
	Callee string
	Call   *ast.CallExpr
	// Node is the CFG node containing the call (for loop/branch depth
	// weighting and per-process execution sets).
	Node *Node
}

// CallGraph holds the call relation of the whole program together with
// the per-function CFGs.
type CallGraph struct {
	Graphs map[string]*Graph
	Sites  []*CallSite
	// Callees maps a function to the set of functions it may call.
	Callees map[string]map[string]bool
}

// BuildProgram builds CFGs for every function and the call graph.
func BuildProgram(f *ast.File) *CallGraph {
	cg := &CallGraph{
		Graphs:  map[string]*Graph{},
		Callees: map[string]map[string]bool{},
	}
	for _, fn := range f.Funcs {
		g := Build(fn)
		cg.Graphs[fn.Name] = g
		cg.Callees[fn.Name] = map[string]bool{}
		for _, n := range g.Nodes {
			collect := func(e ast.Expr) {
				ast.Walk(e, func(nd ast.Node) bool {
					if call, ok := nd.(*ast.CallExpr); ok {
						cg.Sites = append(cg.Sites, &CallSite{
							Caller: fn.Name, Callee: call.Name, Call: call, Node: n,
						})
						cg.Callees[fn.Name][call.Name] = true
					}
					return true
				})
			}
			for _, s := range n.Stmts {
				collectStmtCalls(s, collect)
			}
			if n.Cond != nil {
				collect(n.Cond)
			}
		}
	}
	return cg
}

// collectStmtCalls finds call expressions directly in a simple
// statement (without descending into nested statements, which live in
// their own CFG nodes).
func collectStmtCalls(s ast.Stmt, collect func(ast.Expr)) {
	switch x := s.(type) {
	case *ast.DeclStmt:
		if x.Init != nil {
			collect(x.Init)
		}
	case *ast.AssignStmt:
		collect(x.LHS)
		collect(x.RHS)
	case *ast.ExprStmt:
		collect(x.X)
	case *ast.ReturnStmt:
		if x.X != nil {
			collect(x.X)
		}
	case *ast.AcquireStmt:
		collect(x.Lock)
	case *ast.ReleaseStmt:
		collect(x.Lock)
	}
}

// BottomUpOrder returns the functions reachable from root in an order
// where callees come before callers when possible. Cycles (recursion)
// are broken arbitrarily; the side-effect analysis iterates to a fixed
// point so the order only affects convergence speed.
func (cg *CallGraph) BottomUpOrder(root string) []string {
	state := map[string]int{} // 0 unseen, 1 visiting, 2 done
	var order []string
	var visit func(name string)
	visit = func(name string) {
		if state[name] != 0 {
			return
		}
		state[name] = 1
		callees := make([]string, 0, len(cg.Callees[name]))
		for c := range cg.Callees[name] {
			callees = append(callees, c)
		}
		sort.Strings(callees)
		for _, c := range callees {
			if _, ok := cg.Graphs[c]; ok && state[c] != 1 {
				visit(c)
			}
		}
		state[name] = 2
		order = append(order, name)
	}
	visit(root)
	return order
}

// Recursive reports whether the program contains (mutual) recursion
// reachable from root.
func (cg *CallGraph) Recursive(root string) bool {
	state := map[string]int{}
	var visit func(name string) bool
	visit = func(name string) bool {
		switch state[name] {
		case 1:
			return true
		case 2:
			return false
		}
		state[name] = 1
		for c := range cg.Callees[name] {
			if _, ok := cg.Graphs[c]; ok && visit(c) {
				return true
			}
		}
		state[name] = 2
		return false
	}
	return visit(root)
}

// SitesIn returns the call sites within the named function.
func (cg *CallGraph) SitesIn(caller string) []*CallSite {
	var out []*CallSite
	for _, s := range cg.Sites {
		if s.Caller == caller {
			out = append(out, s)
		}
	}
	return out
}

// Dump renders the call graph for diagnostics.
func (cg *CallGraph) Dump() string {
	var sb strings.Builder
	names := make([]string, 0, len(cg.Graphs))
	for n := range cg.Graphs {
		names = append(names, n)
	}
	sort.Strings(names)
	for _, n := range names {
		callees := make([]string, 0, len(cg.Callees[n]))
		for c := range cg.Callees[n] {
			callees = append(callees, c)
		}
		sort.Strings(callees)
		fmt.Fprintf(&sb, "%s -> %s\n", n, strings.Join(callees, " "))
	}
	return sb.String()
}
