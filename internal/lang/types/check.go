package types

import (
	"fmt"

	"falseshare/internal/lang/ast"
	"falseshare/internal/lang/token"
)

// Error is a semantic error with a source position.
type Error struct {
	Pos token.Pos
	Msg string
}

func (e *Error) Error() string { return fmt.Sprintf("%s: %s", e.Pos, e.Msg) }

// ErrorList collects semantic errors.
type ErrorList []*Error

func (l ErrorList) Error() string {
	switch len(l) {
	case 0:
		return "no errors"
	case 1:
		return l[0].Error()
	}
	return fmt.Sprintf("%s (and %d more errors)", l[0], len(l)-1)
}

// Check type-checks the file and returns the semantic info.
func Check(f *ast.File) (*Info, error) {
	c := &checker{
		info: &Info{
			File:       f,
			Structs:    map[string]*StructInfo{},
			Globals:    map[string]*Symbol{},
			Funcs:      map[string]*FuncInfo{},
			Types:      map[ast.Expr]*Type{},
			Uses:       map[*ast.Ident]*Symbol{},
			FieldUses:  map[*ast.FieldExpr]*Field{},
			LocalDecls: map[*ast.VarDecl]*Symbol{},
		},
	}
	c.file(f)
	if len(c.errs) > 0 {
		return c.info, c.errs
	}
	return c.info, nil
}

type checker struct {
	info *Info
	errs ErrorList

	// current function state
	fn     *FuncInfo
	scopes []map[string]*Symbol
}

func (c *checker) errorf(pos token.Pos, format string, args ...any) {
	if len(c.errs) < 50 {
		c.errs = append(c.errs, &Error{Pos: pos, Msg: fmt.Sprintf(format, args...)})
	}
}

// resolveType converts a syntactic type to a semantic type.
func (c *checker) resolveType(t *ast.TypeExpr) *Type {
	var base *Type
	if t.Struct {
		si, ok := c.info.Structs[t.Name]
		if !ok {
			c.errorf(t.P, "undefined struct %q", t.Name)
			return IntType
		}
		base = &Type{Kind: StructK, Struct: si}
	} else {
		switch t.Name {
		case "int":
			base = IntType
		case "double":
			base = DoubleType
		case "void":
			base = VoidType
		default:
			c.errorf(t.P, "unknown type %q", t.Name)
			return IntType
		}
	}
	for i := 0; i < t.Stars; i++ {
		if base.Kind == Void {
			c.errorf(t.P, "parc has no void pointers (pointers must have a declared object type)")
			return IntType
		}
		base = PointerTo(base)
	}
	return base
}

// declType wraps a resolved base type in the declaration's array dims,
// outermost first.
func (c *checker) declType(base *Type, dims []ast.Expr) *Type {
	t := base
	for i := len(dims) - 1; i >= 0; i-- {
		c.constDim(dims[i])
		t = ArrayOf(t, dims[i])
	}
	return t
}

// constDim verifies a dimension expression is a constant expression
// over integer literals and nprocs.
func (c *checker) constDim(e ast.Expr) {
	ok := true
	ast.Walk(e, func(n ast.Node) bool {
		switch n.(type) {
		case *ast.IntLit, *ast.NprocsExpr, *ast.BinaryExpr, *ast.UnaryExpr:
			return true
		default:
			ok = false
			return false
		}
	})
	if !ok {
		c.errorf(e.Pos(), "array dimension must be a constant expression over integer literals and nprocs")
	}
}

func (c *checker) file(f *ast.File) {
	// Structs first (no forward references except pointer-to-self,
	// which resolves because we register the struct before its fields).
	for _, sd := range f.Structs {
		if _, dup := c.info.Structs[sd.Name]; dup {
			c.errorf(sd.P, "duplicate struct %q", sd.Name)
			continue
		}
		c.info.Structs[sd.Name] = &StructInfo{Name: sd.Name, Decl: sd}
	}
	for _, sd := range f.Structs {
		si := c.info.Structs[sd.Name]
		if si.Decl != sd {
			continue // duplicate
		}
		for idx, fd := range sd.Fields {
			ft := c.declType(c.resolveType(fd.Type), fd.Dims)
			if ft.Kind == StructK {
				c.errorf(fd.P, "struct fields may not embed structs by value (use a pointer)")
			}
			if ft.Kind == Void {
				c.errorf(fd.P, "field %q has void type", fd.Name)
			}
			if si.Field(fd.Name) != nil {
				c.errorf(fd.P, "duplicate field %q in struct %q", fd.Name, sd.Name)
				continue
			}
			si.Fields = append(si.Fields, &Field{Name: fd.Name, Type: ft, Parent: si, Index: idx})
		}
	}

	// Globals.
	for _, g := range f.Globals {
		if _, dup := c.info.Globals[g.Name]; dup {
			c.errorf(g.P, "duplicate global %q", g.Name)
			continue
		}
		var t *Type
		if g.Storage == ast.Lock {
			t = c.declType(LockType, g.Dims)
		} else {
			base := c.resolveType(g.Type)
			if base.Kind == Void {
				c.errorf(g.P, "variable %q has void type", g.Name)
				base = IntType
			}
			t = c.declType(base, g.Dims)
		}
		c.info.Globals[g.Name] = &Symbol{
			Name: g.Name, Kind: GlobalVar, Storage: g.Storage, Type: t, Decl: g,
		}
	}

	// Function signatures before bodies (mutual recursion is legal).
	for _, fn := range f.Funcs {
		if _, dup := c.info.Funcs[fn.Name]; dup {
			c.errorf(fn.P, "duplicate function %q", fn.Name)
			continue
		}
		fi := &FuncInfo{Name: fn.Name, Decl: fn, Ret: c.resolveType(fn.Ret)}
		for _, p := range fn.Params {
			pt := c.resolveType(p.Type)
			if pt.Kind == Void {
				c.errorf(p.P, "parameter %q has void type", p.Name)
				pt = IntType
			}
			if pt.Kind == StructK {
				c.errorf(p.P, "structs are passed by pointer in parc")
			}
			sym := &Symbol{Name: p.Name, Kind: ParamVar, Storage: ast.Auto, Type: pt, Decl: p, Func: fn.Name, Slot: len(fi.Locals)}
			fi.Params = append(fi.Params, sym)
			fi.Locals = append(fi.Locals, sym)
		}
		c.info.Funcs[fn.Name] = fi
	}

	// Bodies.
	for _, fn := range f.Funcs {
		fi := c.info.Funcs[fn.Name]
		if fi == nil || fi.Decl != fn {
			continue
		}
		c.fn = fi
		c.scopes = []map[string]*Symbol{{}}
		for _, p := range fi.Params {
			c.scopes[0][p.Name] = p
		}
		c.stmt(fn.Body)
		c.fn = nil
		c.scopes = nil
	}

	// The program entry point.
	if mainFi, ok := c.info.Funcs["main"]; !ok {
		c.errorf(token.Pos{Line: 1, Col: 1}, "program must define void main()")
	} else {
		if mainFi.Ret.Kind != Void || len(mainFi.Params) != 0 {
			c.errorf(mainFi.Decl.P, "main must be declared as void main()")
		}
	}
}

func (c *checker) pushScope() { c.scopes = append(c.scopes, map[string]*Symbol{}) }
func (c *checker) popScope()  { c.scopes = c.scopes[:len(c.scopes)-1] }

func (c *checker) lookup(name string) *Symbol {
	for i := len(c.scopes) - 1; i >= 0; i-- {
		if s, ok := c.scopes[i][name]; ok {
			return s
		}
	}
	if s, ok := c.info.Globals[name]; ok {
		return s
	}
	return nil
}

func (c *checker) declareLocal(d *ast.VarDecl) *Symbol {
	cur := c.scopes[len(c.scopes)-1]
	if _, dup := cur[d.Name]; dup {
		c.errorf(d.P, "duplicate local %q", d.Name)
	}
	base := c.resolveType(d.Type)
	if base.Kind == Void {
		c.errorf(d.P, "variable %q has void type", d.Name)
		base = IntType
	}
	t := c.declType(base, d.Dims)
	if t.Kind == StructK {
		c.errorf(d.P, "local struct values are not supported; allocate with alloc() and use a pointer")
	}
	sym := &Symbol{Name: d.Name, Kind: LocalVar, Storage: ast.Auto, Type: t, Decl: d, Func: c.fn.Name, Slot: len(c.fn.Locals)}
	c.fn.Locals = append(c.fn.Locals, sym)
	cur[d.Name] = sym
	c.info.LocalDecls[d] = sym
	return sym
}

// ---------------------------------------------------------------------------
// Statements

func (c *checker) stmt(s ast.Stmt) {
	switch x := s.(type) {
	case *ast.BlockStmt:
		c.pushScope()
		for _, st := range x.List {
			c.stmt(st)
		}
		c.popScope()
	case *ast.DeclStmt:
		sym := c.declareLocal(x.Decl)
		if x.Init != nil {
			it := c.expr(x.Init)
			c.checkAssignable(x.P, sym.Type, it, x.Init)
		}
	case *ast.AssignStmt:
		lt := c.expr(x.LHS)
		if !c.isLvalue(x.LHS) {
			c.errorf(x.P, "left-hand side of assignment is not an lvalue")
		}
		rt := c.expr(x.RHS)
		c.checkAssignable(x.P, lt, rt, x.RHS)
	case *ast.ExprStmt:
		if _, ok := x.X.(*ast.CallExpr); !ok {
			c.errorf(x.P, "expression statement must be a function call")
		}
		c.expr(x.X)
	case *ast.IfStmt:
		c.condExpr(x.Cond)
		c.stmt(x.Then)
		if x.Else != nil {
			c.stmt(x.Else)
		}
	case *ast.WhileStmt:
		c.condExpr(x.Cond)
		c.stmt(x.Body)
	case *ast.ForStmt:
		c.pushScope()
		if x.Init != nil {
			c.stmt(x.Init)
		}
		if x.Cond != nil {
			c.condExpr(x.Cond)
		}
		if x.Post != nil {
			c.stmt(x.Post)
		}
		c.stmt(x.Body)
		c.popScope()
	case *ast.ReturnStmt:
		if c.fn.Ret.Kind == Void {
			if x.X != nil {
				c.errorf(x.P, "void function %q returns a value", c.fn.Name)
			}
			return
		}
		if x.X == nil {
			c.errorf(x.P, "function %q must return a %s", c.fn.Name, c.fn.Ret)
			return
		}
		rt := c.expr(x.X)
		c.checkAssignable(x.P, c.fn.Ret, rt, x.X)
	case *ast.BarrierStmt:
		// no constraints
	case *ast.AcquireStmt:
		c.lockExpr(x.Lock)
	case *ast.ReleaseStmt:
		c.lockExpr(x.Lock)
	}
}

func (c *checker) condExpr(e ast.Expr) {
	t := c.expr(e)
	if t.Kind != Int {
		c.errorf(e.Pos(), "condition must have int type, found %s", t)
	}
}

func (c *checker) lockExpr(e ast.Expr) {
	t := c.expr(e)
	if t.Kind != LockT {
		c.errorf(e.Pos(), "acquire/release needs a lock, found %s", t)
	}
}

// checkAssignable reports an error when a value of type rt (from expr
// rhs) cannot be assigned to type lt. The only implicit conversion is
// int -> double; the literal 0 is the null pointer.
func (c *checker) checkAssignable(pos token.Pos, lt, rt *Type, rhs ast.Expr) {
	if lt == nil || rt == nil {
		return
	}
	if lt.Equal(rt) {
		if lt.Kind == Array || lt.Kind == StructK {
			c.errorf(pos, "cannot assign aggregate type %s", lt)
		}
		if lt.Kind == LockT {
			c.errorf(pos, "locks may only be used with acquire/release")
		}
		return
	}
	if lt.Kind == Double && rt.Kind == Int {
		return // implicit promotion
	}
	if lt.Kind == Pointer && rt.Kind == Int {
		if lit, ok := rhs.(*ast.IntLit); ok && lit.Value == 0 {
			return // null pointer constant
		}
	}
	c.errorf(pos, "cannot assign %s to %s", rt, lt)
}

func (c *checker) isLvalue(e ast.Expr) bool {
	switch x := e.(type) {
	case *ast.Ident:
		sym := c.info.Uses[x]
		return sym != nil && sym.Kind != FuncSym
	case *ast.IndexExpr, *ast.FieldExpr, *ast.DerefExpr:
		return true
	}
	return false
}

// ---------------------------------------------------------------------------
// Expressions

func (c *checker) expr(e ast.Expr) *Type {
	t := c.exprInner(e)
	c.info.Types[e] = t
	return t
}

func (c *checker) exprInner(e ast.Expr) *Type {
	switch x := e.(type) {
	case *ast.IntLit:
		return IntType
	case *ast.FloatLit:
		return DoubleType
	case *ast.PidExpr, *ast.NprocsExpr:
		return IntType
	case *ast.Ident:
		sym := c.lookup(x.Name)
		if sym == nil {
			c.errorf(x.P, "undefined: %q", x.Name)
			return IntType
		}
		c.info.Uses[x] = sym
		return sym.Type
	case *ast.UnaryExpr:
		t := c.expr(x.X)
		switch x.Op {
		case token.MINUS:
			if t.Kind != Int && t.Kind != Double {
				c.errorf(x.P, "operator - needs a numeric operand, found %s", t)
				return IntType
			}
			return t
		case token.NOT:
			if t.Kind != Int {
				c.errorf(x.P, "operator ! needs an int operand, found %s", t)
			}
			return IntType
		}
		c.errorf(x.P, "invalid unary operator %s", x.Op)
		return IntType
	case *ast.DerefExpr:
		t := c.expr(x.X)
		if t.Kind != Pointer {
			c.errorf(x.P, "cannot dereference non-pointer type %s", t)
			return IntType
		}
		// Paper restriction: indirection through arithmetic expressions
		// is disallowed; the operand must be a plain pointer-valued
		// designator (variable, field, index, or another deref).
		switch x.X.(type) {
		case *ast.Ident, *ast.FieldExpr, *ast.IndexExpr, *ast.DerefExpr:
		default:
			c.errorf(x.P, "indirection through a computed expression is not allowed in parc")
		}
		return t.Elem
	case *ast.BinaryExpr:
		return c.binary(x)
	case *ast.IndexExpr:
		it := c.expr(x.Index)
		if it.Kind != Int {
			c.errorf(x.Index.Pos(), "array index must be int, found %s", it)
		}
		t := c.expr(x.X)
		switch t.Kind {
		case Array:
			return t.Elem
		case Pointer:
			// Indexing a pointer treats it as a dynamically allocated
			// array (the only sanctioned pointer "arithmetic").
			return t.Elem
		default:
			c.errorf(x.P, "cannot index non-array type %s", t)
			return IntType
		}
	case *ast.FieldExpr:
		t := c.expr(x.X)
		if x.Arrow {
			if t.Kind != Pointer || t.Elem.Kind != StructK {
				c.errorf(x.P, "-> needs a pointer to struct, found %s", t)
				return IntType
			}
			t = t.Elem
		}
		if t.Kind != StructK {
			c.errorf(x.P, ". needs a struct, found %s", t)
			return IntType
		}
		f := t.Struct.Field(x.Name)
		if f == nil {
			c.errorf(x.P, "struct %q has no field %q", t.Struct.Name, x.Name)
			return IntType
		}
		c.info.FieldUses[x] = f
		return f.Type
	case *ast.CallExpr:
		fi, ok := c.info.Funcs[x.Name]
		if !ok {
			c.errorf(x.P, "undefined function %q", x.Name)
			for _, a := range x.Args {
				c.expr(a)
			}
			return IntType
		}
		if len(x.Args) != len(fi.Params) {
			c.errorf(x.P, "call to %q has %d arguments, want %d", x.Name, len(x.Args), len(fi.Params))
		}
		for i, a := range x.Args {
			at := c.expr(a)
			if i < len(fi.Params) {
				c.checkAssignable(a.Pos(), fi.Params[i].Type, at, a)
			}
		}
		return fi.Ret
	case *ast.AllocExpr:
		t := c.resolveType(x.Type)
		if t.Kind == Void {
			c.errorf(x.P, "cannot allocate void")
			t = IntType
		}
		if x.Count != nil {
			ct := c.expr(x.Count)
			if ct.Kind != Int {
				c.errorf(x.Count.Pos(), "alloc count must be int, found %s", ct)
			}
		}
		return PointerTo(t)
	}
	c.errorf(e.Pos(), "unhandled expression")
	return IntType
}

func (c *checker) binary(x *ast.BinaryExpr) *Type {
	lt := c.expr(x.X)
	rt := c.expr(x.Y)
	numeric := func(t *Type) bool { return t.Kind == Int || t.Kind == Double }
	switch x.Op {
	case token.PLUS, token.MINUS, token.STAR, token.SLASH:
		if lt.Kind == Pointer || rt.Kind == Pointer {
			c.errorf(x.P, "pointer arithmetic is not allowed in parc")
			return IntType
		}
		if !numeric(lt) || !numeric(rt) {
			c.errorf(x.P, "operator %s needs numeric operands, found %s and %s", x.Op, lt, rt)
			return IntType
		}
		if lt.Kind == Double || rt.Kind == Double {
			return DoubleType
		}
		return IntType
	case token.PERCENT:
		if lt.Kind != Int || rt.Kind != Int {
			c.errorf(x.P, "operator %% needs int operands, found %s and %s", lt, rt)
		}
		return IntType
	case token.EQ, token.NEQ:
		if lt.Kind == Pointer || rt.Kind == Pointer {
			okL := lt.Kind == Pointer || isNullLit(x.X)
			okR := rt.Kind == Pointer || isNullLit(x.Y)
			if !okL || !okR || (lt.Kind == Pointer && rt.Kind == Pointer && !lt.Equal(rt)) {
				c.errorf(x.P, "invalid pointer comparison between %s and %s", lt, rt)
			}
			return IntType
		}
		if !numeric(lt) || !numeric(rt) {
			c.errorf(x.P, "operator %s needs comparable operands, found %s and %s", x.Op, lt, rt)
		}
		return IntType
	case token.LT, token.LE, token.GT, token.GE:
		if !numeric(lt) || !numeric(rt) {
			c.errorf(x.P, "operator %s needs numeric operands, found %s and %s", x.Op, lt, rt)
		}
		return IntType
	case token.LAND, token.LOR:
		if lt.Kind != Int || rt.Kind != Int {
			c.errorf(x.P, "operator %s needs int operands, found %s and %s", x.Op, lt, rt)
		}
		return IntType
	}
	c.errorf(x.P, "invalid binary operator %s", x.Op)
	return IntType
}

func isNullLit(e ast.Expr) bool {
	lit, ok := e.(*ast.IntLit)
	return ok && lit.Value == 0
}
