package types

import (
	"strings"
	"testing"

	"falseshare/internal/lang/ast"
	"falseshare/internal/lang/parser"
)

func mustParse(t *testing.T, src string) *ast.File {
	t.Helper()
	f, err := parser.Parse(src)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	return f
}

func TestCheckGood(t *testing.T) {
	src := `
struct Cell {
    int hits;
    double weight;
    struct Cell *next;
};

shared int counts[4 * nprocs];
shared double total;
shared struct Cell *heads[8];
private int myid;
lock l;

int work(int i, double w) {
    counts[i] = counts[i] + 1;
    total = total + w;
    return counts[i];
}

void main() {
    int i;
    double w;
    struct Cell *p;
    myid = pid;
    w = 1.5;
    for (i = myid; i < 4 * nprocs; i = i + nprocs) {
        work(i, w);
    }
    barrier;
    p = alloc(struct Cell);
    p->hits = 1;
    p->weight = w;
    p->next = 0;
    acquire(l);
    heads[myid % 8] = p;
    release(l);
}
`
	f := mustParse(t, src)
	info, err := Check(f)
	if err != nil {
		t.Fatalf("check: %v", err)
	}
	if got := info.Globals["counts"].Type.Kind; got != Array {
		t.Errorf("counts kind = %v", got)
	}
	if got := info.Globals["l"].Type.Kind; got != LockT {
		t.Errorf("lock kind = %v", got)
	}
	shared := info.SharedGlobals()
	if len(shared) != 4 { // counts, total, heads, l (myid is private)
		names := []string{}
		for _, s := range shared {
			names = append(names, s.Name)
		}
		t.Errorf("shared globals = %v", names)
	}
	fi := info.Funcs["work"]
	if fi.Ret.Kind != Int || len(fi.Params) != 2 {
		t.Errorf("work signature: %+v", fi)
	}
}

func TestCheckErrors(t *testing.T) {
	cases := []struct {
		name, src, want string
	}{
		{"undefined", `void main() { x = 1; }`, "undefined"},
		{"no main", `shared int x;`, "must define void main"},
		{"main sig", `int main() { return 1; }`, "void main()"},
		{"ptr arith", `
shared int *p;
void main() { p = p + 1; }`, "pointer arithmetic"},
		{"deref nonptr", `
shared int x;
void main() { x = *x; }`, "dereference"},
		{"bad assign", `
shared int x;
shared double d;
void main() { x = d; }`, "cannot assign"},
		{"lock misuse", `
lock l;
shared int x;
void main() { acquire(x); release(l); }`, "needs a lock"},
		{"lock as value", `
lock l;
void main() { int x; x = l; }`, "cannot assign"},
		{"bad call arity", `
void f(int a) { }
void main() { f(1, 2); }`, "2 arguments, want 1"},
		{"void ptr", `
shared void *p;
void main() { }`, "void pointers"},
		{"dup global", `
shared int x;
shared int x;
void main() { }`, "duplicate global"},
		{"nonconst dim", `
shared int g;
void main() { int a[g]; }`, "constant expression"},
		{"struct by value param", `
struct S { int a; };
void f(struct S s) { }
void main() { }`, "passed by pointer"},
		{"cond type", `
shared double d;
void main() { if (d) { } }`, "condition must have int"},
		{"exprstmt", `
shared int x;
void main() { x + 1; }`, "must be a function call"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			f := mustParse(t, tc.src)
			_, err := Check(f)
			if err == nil {
				t.Fatalf("expected error containing %q", tc.want)
			}
			if !strings.Contains(err.Error(), tc.want) {
				t.Fatalf("error %q does not contain %q", err, tc.want)
			}
		})
	}
}

func TestEvalConst(t *testing.T) {
	cases := []struct {
		src    string
		nprocs int64
		want   int64
	}{
		{"4 * nprocs", 12, 48},
		{"nprocs + 1", 8, 9},
		{"100", 1, 100},
		{"(6 + 2) / 4", 1, 2},
		{"10 % 3", 1, 1},
		{"-5", 1, -5},
		{"3 < 4", 1, 1},
	}
	for _, tc := range cases {
		e, err := parser.ParseExpr(tc.src)
		if err != nil {
			t.Fatalf("parse %q: %v", tc.src, err)
		}
		got, ok := EvalConst(e, tc.nprocs)
		if !ok || got != tc.want {
			t.Errorf("EvalConst(%q, %d) = %d, %v; want %d", tc.src, tc.nprocs, got, ok, tc.want)
		}
	}

	// Non-constant expression.
	e, err := parser.ParseExpr("x + 1")
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	if _, ok := EvalConst(e, 1); ok {
		t.Errorf("EvalConst of non-constant should fail")
	}
}

func TestArrayDims(t *testing.T) {
	src := `
shared int m[2 * nprocs][8];
void main() { }
`
	info, err := Check(mustParse(t, src))
	if err != nil {
		t.Fatalf("check: %v", err)
	}
	dims, ok := ArrayDims(info.Globals["m"].Type, 4)
	if !ok || len(dims) != 2 || dims[0] != 8 || dims[1] != 8 {
		t.Fatalf("dims = %v, ok=%v", dims, ok)
	}
	if ElemType(info.Globals["m"].Type).Kind != Int {
		t.Fatalf("elem type wrong")
	}
}
