package types

import (
	"strings"
	"testing"
)

func TestPointerRules(t *testing.T) {
	good := `
struct Node { int v; struct Node *next; };
shared struct Node *head;
void main() {
    struct Node *p;
    p = alloc(struct Node);
    p->next = head;
    head = p;
    p = 0;
    if (p == 0) { p = head; }
    if (p != head) { return; }
}
`
	if _, err := Check(mustParse(t, good)); err != nil {
		t.Fatalf("good pointer program rejected: %v", err)
	}

	bad := []struct{ name, src, want string }{
		{"ptr plus", `
shared int *p;
void main() { int *q; q = p + 1; }`, "pointer arithmetic"},
		{"mixed ptr cmp", `
struct A { int v; };
struct B { int v; };
shared struct A *a;
shared struct B *bb;
void main() { if (a == bb) { } }`, "pointer comparison"},
		{"ptr assign mismatch", `
struct A { int v; };
struct B { int v; };
shared struct A *a;
shared struct B *bb;
void main() { a = bb; }`, "cannot assign"},
		{"nonzero int to ptr", `
shared int *p;
void main() { p = 5; }`, "cannot assign"},
		{"ptr less-than", `
shared int *p;
shared int *q;
void main() { if (p < q) { } }`, "numeric operands"},
	}
	for _, tc := range bad {
		t.Run(tc.name, func(t *testing.T) {
			_, err := Check(mustParse(t, tc.src))
			if err == nil || !strings.Contains(err.Error(), tc.want) {
				t.Fatalf("err = %v, want containing %q", err, tc.want)
			}
		})
	}
}

func TestStructRules(t *testing.T) {
	bad := []struct{ name, src, want string }{
		{"embed by value", `
struct A { int v; };
struct B { struct A a; };
void main() { }`, "embed structs by value"},
		{"dup field", `
struct A { int v; int v; };
void main() { }`, "duplicate field"},
		{"dup struct", `
struct A { int v; };
struct A { int w; };
void main() { }`, "duplicate struct"},
		{"unknown field", `
struct A { int v; };
shared struct A *p;
void main() { p->w = 1; }`, "no field"},
		{"dot on pointer", `
struct A { int v; };
shared struct A *p;
void main() { p.v = 1; }`, "needs a struct"},
		{"arrow on value", `
struct A { int v; };
shared struct A arr[4];
void main() { arr[0]->v = 1; }`, "pointer to struct"},
	}
	for _, tc := range bad {
		t.Run(tc.name, func(t *testing.T) {
			_, err := Check(mustParse(t, tc.src))
			if err == nil || !strings.Contains(err.Error(), tc.want) {
				t.Fatalf("err = %v, want containing %q", err, tc.want)
			}
		})
	}
}

func TestPromotionRules(t *testing.T) {
	src := `
shared double d;
shared int i;
void main() {
    d = 3;
    d = i;
    d = d + i;
    d = i * 2 + d;
    if (d > i) { i = 1; }
}
`
	if _, err := Check(mustParse(t, src)); err != nil {
		t.Fatalf("promotion program rejected: %v", err)
	}
	// The reverse direction needs explicit handling (none exists).
	_, err := Check(mustParse(t, `
shared double d;
shared int i;
void main() { i = d; }`))
	if err == nil {
		t.Fatalf("double-to-int narrowing must be rejected")
	}
}

func TestLockArrays(t *testing.T) {
	src := `
lock locks[16];
shared int data[16];
void main() {
    acquire(locks[pid % 16]);
    data[pid % 16] = 1;
    release(locks[pid % 16]);
}
`
	info, err := Check(mustParse(t, src))
	if err != nil {
		t.Fatalf("lock array rejected: %v", err)
	}
	lt := info.Globals["locks"].Type
	if lt.Kind != Array || ElemType(lt).Kind != LockT {
		t.Errorf("locks type = %s", lt)
	}
}

func TestReturnPaths(t *testing.T) {
	bad := []struct{ name, src, want string }{
		{"void returns value", `
void f() { return 1; }
void main() { f(); }`, "returns a value"},
		{"missing value", `
int f() { return; }
void main() { f(); }`, "must return"},
		{"wrong type", `
struct S { int v; };
shared struct S *g;
int f() { return g; }
void main() { f(); }`, "cannot assign"},
	}
	for _, tc := range bad {
		t.Run(tc.name, func(t *testing.T) {
			_, err := Check(mustParse(t, tc.src))
			if err == nil || !strings.Contains(err.Error(), tc.want) {
				t.Fatalf("err = %v, want containing %q", err, tc.want)
			}
		})
	}
}

func TestInfoMaps(t *testing.T) {
	src := `
struct S { int v; };
shared struct S *p;
shared int g;
void main() {
    int x;
    x = g;
    p->v = x;
}
`
	f := mustParse(t, src)
	info, err := Check(f)
	if err != nil {
		t.Fatal(err)
	}
	// Every expression in the tree must have a type.
	missing := 0
	for _, fn := range f.Funcs {
		_ = fn
	}
	if len(info.Types) == 0 || len(info.Uses) == 0 || len(info.FieldUses) != 1 {
		t.Errorf("info maps: types=%d uses=%d fields=%d — missing %d",
			len(info.Types), len(info.Uses), len(info.FieldUses), missing)
	}
	if info.Funcs["main"].Locals[0].Name != "x" {
		t.Errorf("locals: %+v", info.Funcs["main"].Locals)
	}
}

func TestTypeString(t *testing.T) {
	cases := []struct {
		typ  *Type
		want string
	}{
		{IntType, "int"},
		{DoubleType, "double"},
		{PointerTo(IntType), "int*"},
		{PointerTo(PointerTo(DoubleType)), "double**"},
		{LockType, "lock"},
	}
	for _, tc := range cases {
		if got := tc.typ.String(); got != tc.want {
			t.Errorf("String = %q, want %q", got, tc.want)
		}
	}
}

func TestTypeEqual(t *testing.T) {
	if !PointerTo(IntType).Equal(PointerTo(IntType)) {
		t.Errorf("equal pointers unequal")
	}
	if PointerTo(IntType).Equal(PointerTo(DoubleType)) {
		t.Errorf("different pointers equal")
	}
	if IntType.Equal(nil) {
		t.Errorf("nil comparison")
	}
}

func TestScalarSize(t *testing.T) {
	if IntType.MustScalarSize() != 4 || DoubleType.MustScalarSize() != 8 ||
		PointerTo(IntType).MustScalarSize() != 8 || LockType.MustScalarSize() != 4 {
		t.Errorf("scalar sizes wrong")
	}
	arr := ArrayOf(IntType, nil)
	if _, err := arr.ScalarSize(); err == nil {
		t.Errorf("ScalarSize of array should error")
	}
	defer func() {
		if recover() == nil {
			t.Errorf("MustScalarSize of array should panic")
		}
	}()
	arr.MustScalarSize()
}

func TestSharedGlobalsOrder(t *testing.T) {
	src := `
shared int b;
private int x;
shared int a;
lock l;
void main() { }
`
	info, err := Check(mustParse(t, src))
	if err != nil {
		t.Fatal(err)
	}
	var names []string
	for _, s := range info.SharedGlobals() {
		names = append(names, s.Name)
	}
	want := []string{"b", "a", "l"}
	if len(names) != 3 {
		t.Fatalf("shared globals: %v", names)
	}
	for i := range want {
		if names[i] != want[i] {
			t.Errorf("order: %v, want %v", names, want)
		}
	}
}
