// Package types implements parc's semantic types, symbol tables and
// type checker.
//
// The checker also enforces the model restrictions of Section 2 of the
// paper: pointers may only point to objects of their declared type,
// pointer arithmetic is disallowed, and every function is defined in
// the single translation unit being compiled.
package types

import (
	"fmt"

	"falseshare/internal/lang/ast"
)

// Kind enumerates the semantic type kinds.
type Kind int

const (
	Invalid Kind = iota
	Int          // 4 bytes
	Double       // 8 bytes
	Void         // function results only
	Pointer      // 8 bytes
	Array        // fixed-extent array
	StructK      // record
	LockT        // lock word, 4 bytes
)

// Word sizes (bytes). The cache simulator classifies sharing at
// word (4-byte) granularity, matching the era's 32-bit data words.
const (
	IntSize     = 4
	DoubleSize  = 8
	PointerSize = 8
	LockSize    = 4
)

// Type is a parc semantic type.
type Type struct {
	Kind   Kind
	Elem   *Type       // Pointer, Array element type
	Len    ast.Expr    // Array extent (constant expr, may use nprocs)
	Struct *StructInfo // StructK
}

var (
	IntType    = &Type{Kind: Int}
	DoubleType = &Type{Kind: Double}
	VoidType   = &Type{Kind: Void}
	LockType   = &Type{Kind: LockT}
)

// PointerTo returns the pointer type to elem.
func PointerTo(elem *Type) *Type { return &Type{Kind: Pointer, Elem: elem} }

// ArrayOf returns the array type with the given extent expression.
func ArrayOf(elem *Type, n ast.Expr) *Type {
	return &Type{Kind: Array, Elem: elem, Len: n}
}

// String renders the type.
func (t *Type) String() string {
	if t == nil {
		return "<nil>"
	}
	switch t.Kind {
	case Int:
		return "int"
	case Double:
		return "double"
	case Void:
		return "void"
	case LockT:
		return "lock"
	case Pointer:
		return t.Elem.String() + "*"
	case Array:
		return t.Elem.String() + "[" + ast.PrintExpr(t.Len) + "]"
	case StructK:
		return "struct " + t.Struct.Name
	}
	return "invalid"
}

// Equal reports structural type equality. Array extents are compared
// by printed form (extents are constant expressions).
func (t *Type) Equal(u *Type) bool {
	if t == nil || u == nil {
		return t == u
	}
	if t.Kind != u.Kind {
		return false
	}
	switch t.Kind {
	case Pointer:
		return t.Elem.Equal(u.Elem)
	case Array:
		return t.Elem.Equal(u.Elem) && ast.PrintExpr(t.Len) == ast.PrintExpr(u.Len)
	case StructK:
		return t.Struct.Name == u.Struct.Name
	}
	return true
}

// IsScalar reports whether the type is a scalar value type (int,
// double, or pointer) that fits in a memory cell.
func (t *Type) IsScalar() bool {
	switch t.Kind {
	case Int, Double, Pointer, LockT:
		return true
	}
	return false
}

// ScalarSize returns the byte size of a scalar type, or an error for
// non-scalar types (arrays, structs, void). Callers that have already
// proven the type scalar can use MustScalarSize.
func (t *Type) ScalarSize() (int64, error) {
	switch t.Kind {
	case Int:
		return IntSize, nil
	case Double:
		return DoubleSize, nil
	case Pointer:
		return PointerSize, nil
	case LockT:
		return LockSize, nil
	}
	return 0, fmt.Errorf("types: ScalarSize of non-scalar %s", t)
}

// MustScalarSize is ScalarSize for call sites with a proven scalar
// invariant (e.g. inside a switch over scalar kinds); it panics on
// non-scalar types.
func (t *Type) MustScalarSize() int64 {
	n, err := t.ScalarSize()
	if err != nil {
		panic(err.Error())
	}
	return n
}

// StructInfo is the semantic view of a struct declaration.
type StructInfo struct {
	Name   string
	Decl   *ast.StructDecl
	Fields []*Field
}

// Field returns the named field, or nil.
func (s *StructInfo) Field(name string) *Field {
	for _, f := range s.Fields {
		if f.Name == name {
			return f
		}
	}
	return nil
}

// Field is a struct member with its semantic type.
type Field struct {
	Name   string
	Type   *Type
	Parent *StructInfo
	Index  int
}

// QualifiedName returns "Struct.field" for diagnostics and analysis keys.
func (f *Field) QualifiedName() string { return f.Parent.Name + "." + f.Name }

// SymKind distinguishes the kinds of named program entities.
type SymKind int

const (
	GlobalVar SymKind = iota
	LocalVar
	ParamVar
	FuncSym
)

// Symbol is a named program entity.
type Symbol struct {
	Name    string
	Kind    SymKind
	Storage ast.StorageClass // for variables
	Type    *Type            // variable type or function result type
	Decl    ast.Node
	Func    string // enclosing function for locals/params
	Slot    int    // frame slot index for locals/params
}

// IsShared reports whether the symbol denotes shared data (shared
// globals and locks live in the shared address space).
func (s *Symbol) IsShared() bool {
	return s.Kind == GlobalVar && (s.Storage == ast.Shared || s.Storage == ast.Lock)
}

// FuncInfo is the semantic view of a function.
type FuncInfo struct {
	Name   string
	Decl   *ast.FuncDecl
	Ret    *Type
	Params []*Symbol
	Locals []*Symbol // declaration order, includes params first
}

// Info is the result of type checking a file.
type Info struct {
	File    *ast.File
	Structs map[string]*StructInfo
	Globals map[string]*Symbol
	Funcs   map[string]*FuncInfo
	// Types maps every expression to its type.
	Types map[ast.Expr]*Type
	// Uses maps identifier expressions to their symbols.
	Uses map[*ast.Ident]*Symbol
	// FieldUses maps field selections to the selected field.
	FieldUses map[*ast.FieldExpr]*Field
	// LocalDecls maps local declarations to their symbols.
	LocalDecls map[*ast.VarDecl]*Symbol
}

// TypeOf returns the checked type of e (nil if unknown).
func (i *Info) TypeOf(e ast.Expr) *Type { return i.Types[e] }

// SymbolOf returns the symbol an identifier refers to (nil if unknown).
func (i *Info) SymbolOf(id *ast.Ident) *Symbol { return i.Uses[id] }

// SharedGlobals returns the shared (and lock) file-scope variables in
// declaration order: the candidate set for false-sharing analysis.
func (i *Info) SharedGlobals() []*Symbol {
	var out []*Symbol
	for _, g := range i.File.Globals {
		s := i.Globals[g.Name]
		if s != nil && s.IsShared() {
			out = append(out, s)
		}
	}
	return out
}
