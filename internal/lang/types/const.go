package types

import (
	"falseshare/internal/lang/ast"
	"falseshare/internal/lang/token"
)

// EvalConst evaluates a constant integer expression over literals,
// nprocs, and arithmetic. It is used for array dimensions: parc array
// extents may depend on the configured process count (the analysis
// assumes one process per processor, paper §2). Returns ok=false if
// the expression is not constant.
func EvalConst(e ast.Expr, nprocs int64) (int64, bool) {
	switch x := e.(type) {
	case *ast.IntLit:
		return x.Value, true
	case *ast.NprocsExpr:
		return nprocs, true
	case *ast.UnaryExpr:
		v, ok := EvalConst(x.X, nprocs)
		if !ok {
			return 0, false
		}
		switch x.Op {
		case token.MINUS:
			return -v, true
		case token.NOT:
			if v == 0 {
				return 1, true
			}
			return 0, true
		}
		return 0, false
	case *ast.BinaryExpr:
		a, ok1 := EvalConst(x.X, nprocs)
		b, ok2 := EvalConst(x.Y, nprocs)
		if !ok1 || !ok2 {
			return 0, false
		}
		switch x.Op {
		case token.PLUS:
			return a + b, true
		case token.MINUS:
			return a - b, true
		case token.STAR:
			return a * b, true
		case token.SLASH:
			if b == 0 {
				return 0, false
			}
			return a / b, true
		case token.PERCENT:
			if b == 0 {
				return 0, false
			}
			return a % b, true
		case token.EQ:
			return b2i(a == b), true
		case token.NEQ:
			return b2i(a != b), true
		case token.LT:
			return b2i(a < b), true
		case token.LE:
			return b2i(a <= b), true
		case token.GT:
			return b2i(a > b), true
		case token.GE:
			return b2i(a >= b), true
		case token.LAND:
			return b2i(a != 0 && b != 0), true
		case token.LOR:
			return b2i(a != 0 || b != 0), true
		}
		return 0, false
	}
	return 0, false
}

func b2i(b bool) int64 {
	if b {
		return 1
	}
	return 0
}

// ArrayDims returns the concrete extents of a (possibly nested) array
// type for the given process count, innermost last. A non-array type
// yields an empty slice. ok=false if any extent is not constant or is
// not positive.
func ArrayDims(t *Type, nprocs int64) ([]int64, bool) {
	var dims []int64
	for t.Kind == Array {
		n, ok := EvalConst(t.Len, nprocs)
		if !ok || n <= 0 {
			return nil, false
		}
		dims = append(dims, n)
		t = t.Elem
	}
	return dims, true
}

// ElemType returns the ultimate element type of a (possibly nested)
// array type, or t itself for non-arrays.
func ElemType(t *Type) *Type {
	for t.Kind == Array {
		t = t.Elem
	}
	return t
}
