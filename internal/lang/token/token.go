// Package token defines the lexical tokens of parc, the restricted
// explicitly-parallel C-like language accepted by the restructurer.
//
// parc follows the programming model of Section 2 of Jeremiassen &
// Eggers (PPoPP 1995): coarse-grained SPMD parallelism, shared and
// private storage classes, locks and barriers, and pointers restricted
// so that they may only point to objects of their declared type and may
// not participate in arithmetic.
package token

import "fmt"

// Kind enumerates the lexical token kinds.
type Kind int

// Token kinds. Literal kinds carry their text in Token.Lit.
const (
	ILLEGAL Kind = iota
	EOF
	COMMENT

	// Literals and identifiers.
	IDENT    // main
	INTLIT   // 123
	FLOATLIT // 1.5

	// Operators and delimiters.
	ASSIGN  // =
	PLUS    // +
	MINUS   // -
	STAR    // *
	SLASH   // /
	PERCENT // %

	EQ  // ==
	NEQ // !=
	LT  // <
	LE  // <=
	GT  // >
	GE  // >=

	LAND // &&
	LOR  // ||
	NOT  // !
	AMP  // &

	LPAREN   // (
	RPAREN   // )
	LBRACE   // {
	RBRACE   // }
	LBRACKET // [
	RBRACKET // ]
	COMMA    // ,
	SEMI     // ;
	DOT      // .
	ARROW    // ->

	// Keywords.
	keywordBeg
	KW_INT     // int
	KW_DOUBLE  // double
	KW_VOID    // void
	KW_STRUCT  // struct
	KW_SHARED  // shared
	KW_PRIVATE // private
	KW_LOCK    // lock
	KW_IF      // if
	KW_ELSE    // else
	KW_WHILE   // while
	KW_FOR     // for
	KW_RETURN  // return
	KW_FORALL  // forall (HPF-style distributed loop, paper §2 footnote)
	KW_BARRIER // barrier
	KW_ACQUIRE // acquire
	KW_RELEASE // release
	KW_ALLOC   // alloc
	KW_ALLOCPP // allocpp (per-process arena allocation)
	KW_PID     // pid
	KW_NPROCS  // nprocs
	keywordEnd
)

var kindNames = map[Kind]string{
	ILLEGAL:  "ILLEGAL",
	EOF:      "EOF",
	COMMENT:  "COMMENT",
	IDENT:    "IDENT",
	INTLIT:   "INTLIT",
	FLOATLIT: "FLOATLIT",

	ASSIGN:  "=",
	PLUS:    "+",
	MINUS:   "-",
	STAR:    "*",
	SLASH:   "/",
	PERCENT: "%",

	EQ:  "==",
	NEQ: "!=",
	LT:  "<",
	LE:  "<=",
	GT:  ">",
	GE:  ">=",

	LAND: "&&",
	LOR:  "||",
	NOT:  "!",
	AMP:  "&",

	LPAREN:   "(",
	RPAREN:   ")",
	LBRACE:   "{",
	RBRACE:   "}",
	LBRACKET: "[",
	RBRACKET: "]",
	COMMA:    ",",
	SEMI:     ";",
	DOT:      ".",
	ARROW:    "->",

	KW_INT:     "int",
	KW_DOUBLE:  "double",
	KW_VOID:    "void",
	KW_STRUCT:  "struct",
	KW_SHARED:  "shared",
	KW_PRIVATE: "private",
	KW_LOCK:    "lock",
	KW_IF:      "if",
	KW_ELSE:    "else",
	KW_WHILE:   "while",
	KW_FOR:     "for",
	KW_RETURN:  "return",
	KW_FORALL:  "forall",
	KW_BARRIER: "barrier",
	KW_ACQUIRE: "acquire",
	KW_RELEASE: "release",
	KW_ALLOC:   "alloc",
	KW_ALLOCPP: "allocpp",
	KW_PID:     "pid",
	KW_NPROCS:  "nprocs",
}

// String returns the human-readable spelling of the kind.
func (k Kind) String() string {
	if s, ok := kindNames[k]; ok {
		return s
	}
	return fmt.Sprintf("Kind(%d)", int(k))
}

// keywords maps spellings to keyword kinds.
var keywords = map[string]Kind{}

func init() {
	for k := keywordBeg + 1; k < keywordEnd; k++ {
		keywords[kindNames[k]] = k
	}
}

// Lookup returns the keyword kind for an identifier spelling, or IDENT.
func Lookup(ident string) Kind {
	if k, ok := keywords[ident]; ok {
		return k
	}
	return IDENT
}

// IsKeyword reports whether the spelling is a parc keyword.
func IsKeyword(s string) bool {
	_, ok := keywords[s]
	return ok
}

// Pos is a source position: 1-based line and column.
type Pos struct {
	Line int
	Col  int
}

// String formats the position as "line:col".
func (p Pos) String() string { return fmt.Sprintf("%d:%d", p.Line, p.Col) }

// IsValid reports whether the position has been set.
func (p Pos) IsValid() bool { return p.Line > 0 }

// Token is a single lexical token with its position and literal text.
type Token struct {
	Kind Kind
	Pos  Pos
	Lit  string // literal text for IDENT, INTLIT, FLOATLIT, COMMENT
}

// String renders the token for diagnostics.
func (t Token) String() string {
	switch t.Kind {
	case IDENT, INTLIT, FLOATLIT:
		return fmt.Sprintf("%s(%q)", t.Kind, t.Lit)
	default:
		return t.Kind.String()
	}
}

// Precedence returns the binary operator precedence for the kind
// (higher binds tighter), or 0 if the kind is not a binary operator.
func (k Kind) Precedence() int {
	switch k {
	case LOR:
		return 1
	case LAND:
		return 2
	case EQ, NEQ:
		return 3
	case LT, LE, GT, GE:
		return 4
	case PLUS, MINUS:
		return 5
	case STAR, SLASH, PERCENT:
		return 6
	}
	return 0
}
