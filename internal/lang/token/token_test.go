package token

import "testing"

func TestLookupKeywords(t *testing.T) {
	cases := map[string]Kind{
		"int":     KW_INT,
		"double":  KW_DOUBLE,
		"void":    KW_VOID,
		"struct":  KW_STRUCT,
		"shared":  KW_SHARED,
		"private": KW_PRIVATE,
		"lock":    KW_LOCK,
		"if":      KW_IF,
		"else":    KW_ELSE,
		"while":   KW_WHILE,
		"for":     KW_FOR,
		"return":  KW_RETURN,
		"barrier": KW_BARRIER,
		"acquire": KW_ACQUIRE,
		"release": KW_RELEASE,
		"alloc":   KW_ALLOC,
		"allocpp": KW_ALLOCPP,
		"pid":     KW_PID,
		"nprocs":  KW_NPROCS,
		"main":    IDENT,
		"x":       IDENT,
		"Int":     IDENT, // keywords are case sensitive
	}
	for s, want := range cases {
		if got := Lookup(s); got != want {
			t.Errorf("Lookup(%q) = %v, want %v", s, got, want)
		}
	}
}

func TestIsKeyword(t *testing.T) {
	if !IsKeyword("barrier") || IsKeyword("barriers") || IsKeyword("") {
		t.Errorf("IsKeyword misbehaves")
	}
}

func TestKindStrings(t *testing.T) {
	// Every declared kind must have a printable name (no "Kind(n)").
	for k := ILLEGAL; k < keywordEnd; k++ {
		if k == keywordBeg {
			continue
		}
		s := k.String()
		if s == "" || (len(s) > 5 && s[:5] == "Kind(") {
			t.Errorf("kind %d has no name", int(k))
		}
	}
}

func TestPrecedenceOrdering(t *testing.T) {
	// || < && < ==/!= < relational < additive < multiplicative.
	ordered := [][]Kind{
		{LOR},
		{LAND},
		{EQ, NEQ},
		{LT, LE, GT, GE},
		{PLUS, MINUS},
		{STAR, SLASH, PERCENT},
	}
	for level, kinds := range ordered {
		for _, k := range kinds {
			if got := k.Precedence(); got != level+1 {
				t.Errorf("%v precedence = %d, want %d", k, got, level+1)
			}
		}
	}
	for _, k := range []Kind{ASSIGN, NOT, LPAREN, IDENT, KW_IF} {
		if k.Precedence() != 0 {
			t.Errorf("%v should have no binary precedence", k)
		}
	}
}

func TestPos(t *testing.T) {
	p := Pos{Line: 3, Col: 7}
	if p.String() != "3:7" {
		t.Errorf("pos string: %q", p)
	}
	if !p.IsValid() || (Pos{}).IsValid() {
		t.Errorf("IsValid wrong")
	}
}

func TestTokenString(t *testing.T) {
	tok := Token{Kind: IDENT, Lit: "foo"}
	if tok.String() != `IDENT("foo")` {
		t.Errorf("token string: %q", tok)
	}
	tok = Token{Kind: PLUS}
	if tok.String() != "+" {
		t.Errorf("operator token string: %q", tok)
	}
}
