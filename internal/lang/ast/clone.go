package ast

// CloneExpr returns a deep copy of an expression tree. Transformations
// use it when the same source expression must appear at several
// rewritten sites.
func CloneExpr(e Expr) Expr {
	switch x := e.(type) {
	case nil:
		return nil
	case *Ident:
		c := *x
		return &c
	case *IntLit:
		c := *x
		return &c
	case *FloatLit:
		c := *x
		return &c
	case *PidExpr:
		c := *x
		return &c
	case *NprocsExpr:
		c := *x
		return &c
	case *BinaryExpr:
		c := *x
		c.X = CloneExpr(x.X)
		c.Y = CloneExpr(x.Y)
		return &c
	case *UnaryExpr:
		c := *x
		c.X = CloneExpr(x.X)
		return &c
	case *DerefExpr:
		c := *x
		c.X = CloneExpr(x.X)
		return &c
	case *IndexExpr:
		c := *x
		c.X = CloneExpr(x.X)
		c.Index = CloneExpr(x.Index)
		return &c
	case *FieldExpr:
		c := *x
		c.X = CloneExpr(x.X)
		return &c
	case *CallExpr:
		c := *x
		c.Args = make([]Expr, len(x.Args))
		for i, a := range x.Args {
			c.Args[i] = CloneExpr(a)
		}
		return &c
	case *AllocExpr:
		c := *x
		c.Type = x.Type.Clone()
		if x.Count != nil {
			c.Count = CloneExpr(x.Count)
		}
		return &c
	}
	return e
}
