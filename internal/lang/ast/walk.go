package ast

// Visitor is called by Walk for every node. If the visit function
// returns false, the node's children are not visited.
type Visitor func(Node) bool

// Walk traverses the tree rooted at n in depth-first order, calling v
// for each node before its children.
func Walk(n Node, v Visitor) {
	if n == nil || !v(n) {
		return
	}
	switch x := n.(type) {
	case *File:
		for _, s := range x.Structs {
			Walk(s, v)
		}
		for _, g := range x.Globals {
			Walk(g, v)
		}
		for _, f := range x.Funcs {
			Walk(f, v)
		}
	case *StructDecl:
		for _, f := range x.Fields {
			Walk(f, v)
		}
	case *FieldDecl:
		for _, d := range x.Dims {
			Walk(d, v)
		}
	case *VarDecl:
		for _, d := range x.Dims {
			Walk(d, v)
		}
	case *ParamDecl:
		// leaf
	case *FuncDecl:
		for _, p := range x.Params {
			Walk(p, v)
		}
		Walk(x.Body, v)
	case *BlockStmt:
		for _, s := range x.List {
			Walk(s, v)
		}
	case *DeclStmt:
		Walk(x.Decl, v)
		if x.Init != nil {
			Walk(x.Init, v)
		}
	case *AssignStmt:
		Walk(x.LHS, v)
		Walk(x.RHS, v)
	case *ExprStmt:
		Walk(x.X, v)
	case *IfStmt:
		Walk(x.Cond, v)
		Walk(x.Then, v)
		if x.Else != nil {
			Walk(x.Else, v)
		}
	case *WhileStmt:
		Walk(x.Cond, v)
		Walk(x.Body, v)
	case *ForStmt:
		if x.Init != nil {
			Walk(x.Init, v)
		}
		if x.Cond != nil {
			Walk(x.Cond, v)
		}
		if x.Post != nil {
			Walk(x.Post, v)
		}
		Walk(x.Body, v)
	case *ReturnStmt:
		if x.X != nil {
			Walk(x.X, v)
		}
	case *BarrierStmt:
		// leaf
	case *AcquireStmt:
		Walk(x.Lock, v)
	case *ReleaseStmt:
		Walk(x.Lock, v)
	case *BinaryExpr:
		Walk(x.X, v)
		Walk(x.Y, v)
	case *UnaryExpr:
		Walk(x.X, v)
	case *DerefExpr:
		Walk(x.X, v)
	case *IndexExpr:
		Walk(x.X, v)
		Walk(x.Index, v)
	case *FieldExpr:
		Walk(x.X, v)
	case *CallExpr:
		for _, a := range x.Args {
			Walk(a, v)
		}
	case *AllocExpr:
		if x.Count != nil {
			Walk(x.Count, v)
		}
	case *Ident, *IntLit, *FloatLit, *PidExpr, *NprocsExpr:
		// leaves
	}
}

// RewriteExpr applies f bottom-up to every expression in the tree
// rooted at e and returns the (possibly replaced) expression. Children
// are rewritten before parents so f sees already-rewritten subtrees.
func RewriteExpr(e Expr, f func(Expr) Expr) Expr {
	if e == nil {
		return nil
	}
	switch x := e.(type) {
	case *BinaryExpr:
		x.X = RewriteExpr(x.X, f)
		x.Y = RewriteExpr(x.Y, f)
	case *UnaryExpr:
		x.X = RewriteExpr(x.X, f)
	case *DerefExpr:
		x.X = RewriteExpr(x.X, f)
	case *IndexExpr:
		x.X = RewriteExpr(x.X, f)
		x.Index = RewriteExpr(x.Index, f)
	case *FieldExpr:
		x.X = RewriteExpr(x.X, f)
	case *CallExpr:
		for i := range x.Args {
			x.Args[i] = RewriteExpr(x.Args[i], f)
		}
	case *AllocExpr:
		if x.Count != nil {
			x.Count = RewriteExpr(x.Count, f)
		}
	}
	return f(e)
}

// RewriteStmt applies fe to every expression under s (bottom-up) and
// returns s. It does not replace statements themselves.
func RewriteStmt(s Stmt, fe func(Expr) Expr) Stmt {
	if s == nil {
		return nil
	}
	switch x := s.(type) {
	case *BlockStmt:
		for i := range x.List {
			x.List[i] = RewriteStmt(x.List[i], fe)
		}
	case *DeclStmt:
		if x.Init != nil {
			x.Init = RewriteExpr(x.Init, fe)
		}
	case *AssignStmt:
		x.LHS = RewriteExpr(x.LHS, fe)
		x.RHS = RewriteExpr(x.RHS, fe)
	case *ExprStmt:
		x.X = RewriteExpr(x.X, fe)
	case *IfStmt:
		x.Cond = RewriteExpr(x.Cond, fe)
		x.Then = RewriteStmt(x.Then, fe)
		if x.Else != nil {
			x.Else = RewriteStmt(x.Else, fe)
		}
	case *WhileStmt:
		x.Cond = RewriteExpr(x.Cond, fe)
		x.Body = RewriteStmt(x.Body, fe)
	case *ForStmt:
		if x.Init != nil {
			x.Init = RewriteStmt(x.Init, fe)
		}
		if x.Cond != nil {
			x.Cond = RewriteExpr(x.Cond, fe)
		}
		if x.Post != nil {
			x.Post = RewriteStmt(x.Post, fe)
		}
		x.Body = RewriteStmt(x.Body, fe)
	case *ReturnStmt:
		if x.X != nil {
			x.X = RewriteExpr(x.X, fe)
		}
	case *AcquireStmt:
		x.Lock = RewriteExpr(x.Lock, fe)
	case *ReleaseStmt:
		x.Lock = RewriteExpr(x.Lock, fe)
	case *BarrierStmt:
		// leaf
	}
	return s
}

// RewriteFile applies fe to every expression in every function body.
func RewriteFile(f *File, fe func(Expr) Expr) {
	for _, fn := range f.Funcs {
		RewriteStmt(fn.Body, fe)
	}
}
