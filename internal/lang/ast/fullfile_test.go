package ast_test

import (
	"strings"
	"testing"

	"falseshare/internal/lang/ast"
	"falseshare/internal/lang/parser"
)

const fullSrc = `
// A program touching every declaration and statement form.
struct Node {
    int v;
    double w;
    int tab[4];
    struct Node *next;
};

shared int a[8][4];
shared double d;
private int mine;
lock locks[4];

int helper(int x, double y) {
    if (x > 0 && y > 0.5) {
        return x;
    } else {
        return 0 - x;
    }
}

void main() {
    int i;
    int buf[16];
    struct Node *p;
    i = 0;
    while (i < 8) {
        for (int j = 0; j < 4; j = j + 1) {
            a[i][j] = helper(i, d) + buf[j %% 16];
        }
        i = i + 1;
    }
    p = alloc(struct Node, 2);
    p[0].v = 1;
    p->w = 2.5;
    *p->tab = 0;
    acquire(locks[0]);
    d = d + 1.0;
    release(locks[0]);
    barrier;
    mine = pid + nprocs;
}
`

func parseFull(t *testing.T) *ast.File {
	t.Helper()
	src := strings.ReplaceAll(fullSrc, "%%", "%")
	f, err := parser.Parse(src)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	return f
}

func TestWalkFullFile(t *testing.T) {
	f := parseFull(t)
	counts := map[string]int{}
	ast.Walk(f, func(n ast.Node) bool {
		switch n.(type) {
		case *ast.File:
			counts["file"]++
		case *ast.StructDecl:
			counts["struct"]++
		case *ast.FieldDecl:
			counts["field"]++
		case *ast.VarDecl:
			counts["var"]++
		case *ast.ParamDecl:
			counts["param"]++
		case *ast.FuncDecl:
			counts["func"]++
		case *ast.AllocExpr:
			counts["alloc"]++
		case *ast.BarrierStmt:
			counts["barrier"]++
		case *ast.AcquireStmt:
			counts["acquire"]++
		case *ast.WhileStmt:
			counts["while"]++
		case *ast.ForStmt:
			counts["for"]++
		}
		return true
	})
	want := map[string]int{
		"file": 1, "struct": 1, "field": 4, "func": 2,
		"param": 2, "alloc": 1, "barrier": 1, "acquire": 1,
		"while": 1, "for": 1,
	}
	for k, v := range want {
		if counts[k] != v {
			t.Errorf("walk saw %d %s nodes, want %d", counts[k], k, v)
		}
	}
	// Locals + globals: 4 globals + locals in main.
	if counts["var"] < 7 {
		t.Errorf("var decls = %d", counts["var"])
	}
}

func TestFilePos(t *testing.T) {
	f := parseFull(t)
	if !f.Pos().IsValid() {
		t.Errorf("file position invalid")
	}
	empty := &ast.File{}
	if empty.Pos().IsValid() {
		t.Errorf("empty file should have zero position")
	}
	onlyGlobals := &ast.File{Globals: []*ast.VarDecl{{Name: "x"}}}
	_ = onlyGlobals.Pos()
	onlyFuncs := &ast.File{Funcs: []*ast.FuncDecl{{Name: "f"}}}
	_ = onlyFuncs.Pos()
}

func TestPrintFullFileRoundTrip(t *testing.T) {
	f1 := parseFull(t)
	out1 := ast.Print(f1)
	f2, err := parser.Parse(out1)
	if err != nil {
		t.Fatalf("reparse: %v\n%s", err, out1)
	}
	out2 := ast.Print(f2)
	if out1 != out2 {
		t.Fatalf("print not a fixpoint:\n%s\nvs\n%s", out1, out2)
	}
	// Key constructs survive.
	for _, want := range []string{
		"struct Node {", "int tab[4];", "shared int a[8][4]",
		"private int mine", "lock locks[4]", "alloc(struct Node, 2)",
		"*p->tab", "acquire(locks[0]);", "barrier;", "while (i < 8)",
	} {
		if !strings.Contains(out1, want) {
			t.Errorf("printed file missing %q:\n%s", want, out1)
		}
	}
}

func TestRewriteFileTouchesAllFunctions(t *testing.T) {
	f := parseFull(t)
	n := 0
	ast.RewriteFile(f, func(e ast.Expr) ast.Expr {
		if _, ok := e.(*ast.IntLit); ok {
			n++
		}
		return e
	})
	if n < 10 {
		t.Errorf("rewrite visited only %d int literals", n)
	}
}
