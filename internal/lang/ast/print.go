package ast

import (
	"fmt"
	"strconv"
	"strings"

	"falseshare/internal/lang/token"
)

// Print renders a File as parc source text. The output parses back to
// an equivalent tree; it is used to display transformed programs and
// in round-trip tests.
func Print(f *File) string {
	p := &printer{}
	for _, s := range f.Structs {
		p.structDecl(s)
		p.nl()
	}
	for _, g := range f.Globals {
		p.varDecl(g, true)
		p.buf.WriteString(";\n")
	}
	if len(f.Globals) > 0 {
		p.nl()
	}
	for i, fn := range f.Funcs {
		if i > 0 {
			p.nl()
		}
		p.funcDecl(fn)
	}
	return p.buf.String()
}

// PrintStmt renders a single statement (used in diagnostics and tests).
func PrintStmt(s Stmt) string {
	p := &printer{}
	p.stmt(s)
	return strings.TrimRight(p.buf.String(), "\n")
}

// PrintExpr renders an expression as source text.
func PrintExpr(e Expr) string {
	p := &printer{}
	p.expr(e, 0)
	return p.buf.String()
}

type printer struct {
	buf    strings.Builder
	indent int
}

func (p *printer) nl() { p.buf.WriteByte('\n') }

func (p *printer) line(format string, args ...any) {
	p.tabs()
	fmt.Fprintf(&p.buf, format, args...)
	p.nl()
}

func (p *printer) tabs() {
	for i := 0; i < p.indent; i++ {
		p.buf.WriteString("    ")
	}
}

func (p *printer) structDecl(s *StructDecl) {
	p.line("struct %s {", s.Name)
	p.indent++
	for _, f := range s.Fields {
		p.tabs()
		p.buf.WriteString(f.Type.String())
		p.buf.WriteByte(' ')
		p.buf.WriteString(f.Name)
		for _, d := range f.Dims {
			p.buf.WriteByte('[')
			p.expr(d, 0)
			p.buf.WriteByte(']')
		}
		p.buf.WriteString(";\n")
	}
	p.indent--
	p.line("};")
}

func (p *printer) varDecl(d *VarDecl, fileScope bool) {
	p.tabs()
	if fileScope && d.Storage != Auto {
		p.buf.WriteString(d.Storage.String())
		p.buf.WriteByte(' ')
	}
	if d.Storage != Lock {
		p.buf.WriteString(d.Type.String())
		p.buf.WriteByte(' ')
	}
	p.buf.WriteString(d.Name)
	for _, dim := range d.Dims {
		p.buf.WriteByte('[')
		p.expr(dim, 0)
		p.buf.WriteByte(']')
	}
}

func (p *printer) funcDecl(fn *FuncDecl) {
	p.tabs()
	p.buf.WriteString(fn.Ret.String())
	p.buf.WriteByte(' ')
	p.buf.WriteString(fn.Name)
	p.buf.WriteByte('(')
	for i, param := range fn.Params {
		if i > 0 {
			p.buf.WriteString(", ")
		}
		p.buf.WriteString(param.Type.String())
		p.buf.WriteByte(' ')
		p.buf.WriteString(param.Name)
	}
	p.buf.WriteString(") ")
	p.block(fn.Body)
}

func (p *printer) block(b *BlockStmt) {
	p.buf.WriteString("{\n")
	p.indent++
	for _, s := range b.List {
		p.stmt(s)
	}
	p.indent--
	p.tabs()
	p.buf.WriteString("}\n")
}

func (p *printer) stmt(s Stmt) {
	switch x := s.(type) {
	case *BlockStmt:
		p.tabs()
		p.block(x)
	case *DeclStmt:
		p.varDecl(x.Decl, false)
		if x.Init != nil {
			p.buf.WriteString(" = ")
			p.expr(x.Init, 0)
		}
		p.buf.WriteString(";\n")
	case *AssignStmt:
		p.tabs()
		p.assignInline(x)
		p.buf.WriteString(";\n")
	case *ExprStmt:
		p.tabs()
		p.expr(x.X, 0)
		p.buf.WriteString(";\n")
	case *IfStmt:
		p.tabs()
		p.buf.WriteString("if (")
		p.expr(x.Cond, 0)
		p.buf.WriteString(") ")
		p.nested(x.Then)
		if x.Else != nil {
			p.tabs()
			p.buf.WriteString("else ")
			p.nested(x.Else)
		}
	case *WhileStmt:
		p.tabs()
		p.buf.WriteString("while (")
		p.expr(x.Cond, 0)
		p.buf.WriteString(") ")
		p.nested(x.Body)
	case *ForStmt:
		p.tabs()
		p.buf.WriteString("for (")
		switch init := x.Init.(type) {
		case nil:
		case *AssignStmt:
			p.assignInline(init)
		case *DeclStmt:
			ind := p.indent
			p.indent = 0
			p.varDecl(init.Decl, false)
			p.indent = ind
			if init.Init != nil {
				p.buf.WriteString(" = ")
				p.expr(init.Init, 0)
			}
		}
		p.buf.WriteString("; ")
		if x.Cond != nil {
			p.expr(x.Cond, 0)
		}
		p.buf.WriteString("; ")
		if post, ok := x.Post.(*AssignStmt); ok {
			p.assignInline(post)
		}
		p.buf.WriteString(") ")
		p.nested(x.Body)
	case *ReturnStmt:
		p.tabs()
		p.buf.WriteString("return")
		if x.X != nil {
			p.buf.WriteByte(' ')
			p.expr(x.X, 0)
		}
		p.buf.WriteString(";\n")
	case *BarrierStmt:
		p.line("barrier;")
	case *AcquireStmt:
		p.tabs()
		p.buf.WriteString("acquire(")
		p.expr(x.Lock, 0)
		p.buf.WriteString(");\n")
	case *ReleaseStmt:
		p.tabs()
		p.buf.WriteString("release(")
		p.expr(x.Lock, 0)
		p.buf.WriteString(");\n")
	}
}

// nested prints a statement that is the body of a control statement.
func (p *printer) nested(s Stmt) {
	if b, ok := s.(*BlockStmt); ok {
		p.block(b)
		return
	}
	p.nl()
	p.indent++
	p.stmt(s)
	p.indent--
}

func (p *printer) assignInline(a *AssignStmt) {
	p.expr(a.LHS, 0)
	p.buf.WriteString(" = ")
	p.expr(a.RHS, 0)
}

// expr prints e, parenthesizing when the context precedence requires.
func (p *printer) expr(e Expr, prec int) {
	switch x := e.(type) {
	case *Ident:
		p.buf.WriteString(x.Name)
	case *IntLit:
		p.buf.WriteString(strconv.FormatInt(x.Value, 10))
	case *FloatLit:
		s := strconv.FormatFloat(x.Value, 'g', -1, 64)
		if !strings.ContainsAny(s, ".eE") {
			s += ".0"
		}
		p.buf.WriteString(s)
	case *PidExpr:
		p.buf.WriteString("pid")
	case *NprocsExpr:
		p.buf.WriteString("nprocs")
	case *BinaryExpr:
		op := x.Op.Precedence()
		if op < prec {
			p.buf.WriteByte('(')
		}
		p.expr(x.X, op)
		fmt.Fprintf(&p.buf, " %s ", x.Op)
		p.expr(x.Y, op+1)
		if op < prec {
			p.buf.WriteByte(')')
		}
	case *UnaryExpr:
		p.buf.WriteString(x.Op.String())
		p.expr(x.X, 7)
	case *DerefExpr:
		p.buf.WriteByte('*')
		p.expr(x.X, 7)
	case *IndexExpr:
		p.expr(x.X, 8)
		p.buf.WriteByte('[')
		p.expr(x.Index, 0)
		p.buf.WriteByte(']')
	case *FieldExpr:
		p.expr(x.X, 8)
		if x.Arrow {
			p.buf.WriteString("->")
		} else {
			p.buf.WriteByte('.')
		}
		p.buf.WriteString(x.Name)
	case *CallExpr:
		p.buf.WriteString(x.Name)
		p.buf.WriteByte('(')
		for i, a := range x.Args {
			if i > 0 {
				p.buf.WriteString(", ")
			}
			p.expr(a, 0)
		}
		p.buf.WriteByte(')')
	case *AllocExpr:
		if x.PerProc {
			p.buf.WriteString("allocpp(")
		} else {
			p.buf.WriteString("alloc(")
		}
		p.buf.WriteString(x.Type.String())
		if x.Count != nil {
			p.buf.WriteString(", ")
			p.expr(x.Count, 0)
		}
		p.buf.WriteByte(')')
	}
}

// Helpers for constructing synthetic nodes in transformations.

// NewInt returns an integer literal node.
func NewInt(v int64) *IntLit { return &IntLit{Value: v} }

// NewIdent returns an identifier node.
func NewIdent(name string) *Ident { return &Ident{Name: name} }

// NewBinary returns a binary expression node.
func NewBinary(op token.Kind, x, y Expr) *BinaryExpr {
	return &BinaryExpr{Op: op, X: x, Y: y}
}
