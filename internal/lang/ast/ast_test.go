package ast

import (
	"strings"
	"testing"

	"falseshare/internal/lang/token"
)

// buildExpr constructs (a[i] + 2) * f(x->v) by hand.
func buildExpr() Expr {
	return &BinaryExpr{
		Op: token.STAR,
		X: &BinaryExpr{
			Op: token.PLUS,
			X:  &IndexExpr{X: NewIdent("a"), Index: NewIdent("i")},
			Y:  NewInt(2),
		},
		Y: &CallExpr{Name: "f", Args: []Expr{
			&FieldExpr{X: NewIdent("x"), Name: "v", Arrow: true},
		}},
	}
}

func TestPrintExpr(t *testing.T) {
	got := PrintExpr(buildExpr())
	want := "(a[i] + 2) * f(x->v)"
	if got != want {
		t.Errorf("PrintExpr = %q, want %q", got, want)
	}
}

func TestPrintPrecedence(t *testing.T) {
	cases := []struct {
		e    Expr
		want string
	}{
		{NewBinary(token.PLUS, NewInt(1), NewBinary(token.STAR, NewInt(2), NewInt(3))), "1 + 2 * 3"},
		{NewBinary(token.STAR, NewBinary(token.PLUS, NewInt(1), NewInt(2)), NewInt(3)), "(1 + 2) * 3"},
		{NewBinary(token.MINUS, NewInt(1), NewBinary(token.MINUS, NewInt(2), NewInt(3))), "1 - (2 - 3)"},
		{&UnaryExpr{Op: token.MINUS, X: NewBinary(token.PLUS, NewInt(1), NewInt(2))}, "-(1 + 2)"},
		{&DerefExpr{X: &FieldExpr{X: NewIdent("p"), Name: "f", Arrow: true}}, "*p->f"},
	}
	for _, tc := range cases {
		if got := PrintExpr(tc.e); got != tc.want {
			t.Errorf("PrintExpr = %q, want %q", got, tc.want)
		}
	}
}

func TestPrintFloat(t *testing.T) {
	if got := PrintExpr(&FloatLit{Value: 2}); got != "2.0" {
		t.Errorf("float 2 printed %q, want 2.0 (must re-parse as float)", got)
	}
	if got := PrintExpr(&FloatLit{Value: 0.5}); got != "0.5" {
		t.Errorf("float printed %q", got)
	}
}

func TestWalkVisitsEverything(t *testing.T) {
	e := buildExpr()
	count := map[string]int{}
	Walk(e, func(n Node) bool {
		switch n.(type) {
		case *Ident:
			count["ident"]++
		case *IntLit:
			count["int"]++
		case *BinaryExpr:
			count["bin"]++
		case *IndexExpr:
			count["index"]++
		case *CallExpr:
			count["call"]++
		case *FieldExpr:
			count["field"]++
		}
		return true
	})
	want := map[string]int{"ident": 3, "int": 1, "bin": 2, "index": 1, "call": 1, "field": 1}
	for k, v := range want {
		if count[k] != v {
			t.Errorf("walk counted %d %s nodes, want %d", count[k], k, v)
		}
	}
}

func TestWalkPrune(t *testing.T) {
	e := buildExpr()
	idents := 0
	Walk(e, func(n Node) bool {
		if _, ok := n.(*CallExpr); ok {
			return false // do not descend into the call
		}
		if _, ok := n.(*Ident); ok {
			idents++
		}
		return true
	})
	if idents != 2 { // a, i but not x
		t.Errorf("pruned walk saw %d idents, want 2", idents)
	}
}

func TestCloneIndependence(t *testing.T) {
	orig := buildExpr()
	clone := CloneExpr(orig)
	if PrintExpr(orig) != PrintExpr(clone) {
		t.Fatalf("clone differs: %q vs %q", PrintExpr(orig), PrintExpr(clone))
	}
	// Mutate the clone; the original must not change.
	RewriteExpr(clone, func(e Expr) Expr {
		if id, ok := e.(*Ident); ok && id.Name == "a" {
			return NewIdent("zzz")
		}
		return e
	})
	if strings.Contains(PrintExpr(orig), "zzz") {
		t.Errorf("mutating the clone changed the original")
	}
}

func TestRewriteExprBottomUp(t *testing.T) {
	// Replace every IntLit n with n+1; the parent must see the
	// rewritten child.
	e := NewBinary(token.PLUS, NewInt(1), NewInt(2))
	out := RewriteExpr(e, func(x Expr) Expr {
		if lit, ok := x.(*IntLit); ok {
			return NewInt(lit.Value + 1)
		}
		return x
	})
	if got := PrintExpr(out); got != "2 + 3" {
		t.Errorf("rewrite produced %q", got)
	}
}

func TestRewriteStmtTouchesAllExprs(t *testing.T) {
	s := &IfStmt{
		Cond: NewIdent("c"),
		Then: &AssignStmt{LHS: NewIdent("x"), RHS: NewIdent("y")},
		Else: &BlockStmt{List: []Stmt{
			&ForStmt{
				Init: &AssignStmt{LHS: NewIdent("i"), RHS: NewInt(0)},
				Cond: NewBinary(token.LT, NewIdent("i"), NewIdent("n")),
				Post: &AssignStmt{LHS: NewIdent("i"), RHS: NewBinary(token.PLUS, NewIdent("i"), NewInt(1))},
				Body: &ExprStmt{X: &CallExpr{Name: "g", Args: []Expr{NewIdent("i")}}},
			},
			&ReturnStmt{X: NewIdent("r")},
			&AcquireStmt{Lock: NewIdent("l")},
			&ReleaseStmt{Lock: NewIdent("l")},
		}},
	}
	seen := map[string]bool{}
	RewriteStmt(s, func(e Expr) Expr {
		if id, ok := e.(*Ident); ok {
			seen[id.Name] = true
		}
		return e
	})
	for _, name := range []string{"c", "x", "y", "i", "n", "r", "l"} {
		if !seen[name] {
			t.Errorf("rewrite did not visit %q", name)
		}
	}
}

func TestTypeExprString(t *testing.T) {
	cases := []struct {
		te   TypeExpr
		want string
	}{
		{TypeExpr{Name: "int"}, "int"},
		{TypeExpr{Name: "double", Stars: 1}, "double*"},
		{TypeExpr{Name: "Node", Struct: true, Stars: 2}, "struct Node**"},
	}
	for _, tc := range cases {
		if got := tc.te.String(); got != tc.want {
			t.Errorf("TypeExpr = %q, want %q", got, tc.want)
		}
	}
}

func TestFileLookups(t *testing.T) {
	f := &File{
		Structs: []*StructDecl{{Name: "S"}},
		Globals: []*VarDecl{{Name: "g", Storage: Shared, Type: &TypeExpr{Name: "int"}}},
		Funcs:   []*FuncDecl{{Name: "main", Ret: &TypeExpr{Name: "void"}, Body: &BlockStmt{}}},
	}
	if f.Struct("S") == nil || f.Struct("T") != nil {
		t.Errorf("Struct lookup wrong")
	}
	if f.Global("g") == nil || f.Global("h") != nil {
		t.Errorf("Global lookup wrong")
	}
	if f.Func("main") == nil || f.Func("other") != nil {
		t.Errorf("Func lookup wrong")
	}
}

func TestStorageClassString(t *testing.T) {
	for sc, want := range map[StorageClass]string{
		Auto: "auto", Shared: "shared", Private: "private", Lock: "lock",
	} {
		if sc.String() != want {
			t.Errorf("StorageClass(%d) = %q, want %q", sc, sc, want)
		}
	}
}

func TestPrintStmtForms(t *testing.T) {
	cases := []struct {
		s    Stmt
		want string
	}{
		{&BarrierStmt{}, "barrier;"},
		{&AcquireStmt{Lock: NewIdent("l")}, "acquire(l);"},
		{&ReturnStmt{}, "return;"},
		{&ReturnStmt{X: NewInt(3)}, "return 3;"},
		{&AssignStmt{LHS: NewIdent("x"), RHS: &AllocExpr{Type: &TypeExpr{Name: "Node", Struct: true}}}, "x = alloc(struct Node);"},
		{&AssignStmt{LHS: NewIdent("x"), RHS: &AllocExpr{Type: &TypeExpr{Name: "int"}, Count: NewInt(4), PerProc: true}}, "x = allocpp(int, 4);"},
	}
	for _, tc := range cases {
		if got := PrintStmt(tc.s); got != tc.want {
			t.Errorf("PrintStmt = %q, want %q", got, tc.want)
		}
	}
}
