// Package ast declares the abstract syntax tree of parc programs.
//
// The tree is deliberately small: parc is the restricted explicitly
// parallel C subset described in Section 2 of the paper. Nodes carry
// source positions for diagnostics; semantic information (types,
// symbols) is kept out of the tree in types.Info so that analyses and
// transformations can rewrite the tree freely.
package ast

import "falseshare/internal/lang/token"

// Node is implemented by all AST nodes.
type Node interface {
	Pos() token.Pos
}

// ---------------------------------------------------------------------------
// Types (syntactic)

// TypeExpr is a syntactic type: a base name plus pointer depth.
// parc types are int, double, void (function results only) and
// struct S, each optionally behind one or more '*'.
type TypeExpr struct {
	P      token.Pos
	Name   string // "int", "double", "void", or a struct name
	Struct bool   // Name refers to a struct
	Stars  int    // pointer depth
}

func (t *TypeExpr) Pos() token.Pos { return t.P }

// String renders the type as source text.
func (t *TypeExpr) String() string {
	s := t.Name
	if t.Struct {
		s = "struct " + s
	}
	for i := 0; i < t.Stars; i++ {
		s += "*"
	}
	return s
}

// Clone returns a deep copy.
func (t *TypeExpr) Clone() *TypeExpr {
	c := *t
	return &c
}

// ---------------------------------------------------------------------------
// Declarations

// StorageClass distinguishes shared, private and lock file-scope data.
type StorageClass int

const (
	// Auto is the storage class of locals and parameters (private).
	Auto StorageClass = iota
	// Shared data lives in the shared address space and is visible to
	// all processes; only shared data can be falsely shared.
	Shared
	// Private file-scope data is replicated per process.
	Private
	// Lock declares a mutual-exclusion lock word.
	Lock
)

func (s StorageClass) String() string {
	switch s {
	case Auto:
		return "auto"
	case Shared:
		return "shared"
	case Private:
		return "private"
	case Lock:
		return "lock"
	}
	return "storage?"
}

// VarDecl declares a variable: file scope (with a storage class) or
// local. Dims holds the constant array dimensions, outermost first.
type VarDecl struct {
	P       token.Pos
	Storage StorageClass
	Type    *TypeExpr // nil for lock declarations
	Name    string
	Dims    []Expr // constant expressions; empty for scalars
}

func (d *VarDecl) Pos() token.Pos { return d.P }

// IsArray reports whether the declaration has array dimensions.
func (d *VarDecl) IsArray() bool { return len(d.Dims) > 0 }

// FieldDecl is a struct member.
type FieldDecl struct {
	P    token.Pos
	Type *TypeExpr
	Name string
	Dims []Expr
}

func (f *FieldDecl) Pos() token.Pos { return f.P }

// StructDecl declares a record type.
type StructDecl struct {
	P      token.Pos
	Name   string
	Fields []*FieldDecl
}

func (d *StructDecl) Pos() token.Pos { return d.P }

// Field returns the field with the given name, or nil.
func (d *StructDecl) Field(name string) *FieldDecl {
	for _, f := range d.Fields {
		if f.Name == name {
			return f
		}
	}
	return nil
}

// ParamDecl is a function parameter.
type ParamDecl struct {
	P    token.Pos
	Type *TypeExpr
	Name string
}

func (p *ParamDecl) Pos() token.Pos { return p.P }

// FuncDecl declares a function. parc has no prototypes: all functions
// are defined in one translation unit (the paper restricts separate
// compilation for modules touching transformable shared data).
type FuncDecl struct {
	P      token.Pos
	Ret    *TypeExpr
	Name   string
	Params []*ParamDecl
	Body   *BlockStmt
}

func (d *FuncDecl) Pos() token.Pos { return d.P }

// File is a parsed translation unit.
type File struct {
	Structs []*StructDecl
	Globals []*VarDecl
	Funcs   []*FuncDecl
}

// Pos returns the position of the first declaration in the file.
func (f *File) Pos() token.Pos {
	switch {
	case len(f.Structs) > 0:
		return f.Structs[0].P
	case len(f.Globals) > 0:
		return f.Globals[0].P
	case len(f.Funcs) > 0:
		return f.Funcs[0].P
	}
	return token.Pos{}
}

// Struct returns the struct declaration with the given name, or nil.
func (f *File) Struct(name string) *StructDecl {
	for _, s := range f.Structs {
		if s.Name == name {
			return s
		}
	}
	return nil
}

// Global returns the file-scope variable with the given name, or nil.
func (f *File) Global(name string) *VarDecl {
	for _, g := range f.Globals {
		if g.Name == name {
			return g
		}
	}
	return nil
}

// Func returns the function with the given name, or nil.
func (f *File) Func(name string) *FuncDecl {
	for _, fn := range f.Funcs {
		if fn.Name == name {
			return fn
		}
	}
	return nil
}

// ---------------------------------------------------------------------------
// Statements

// Stmt is implemented by all statement nodes.
type Stmt interface {
	Node
	stmtNode()
}

// BlockStmt is a brace-delimited statement list.
type BlockStmt struct {
	P    token.Pos
	List []Stmt
}

// DeclStmt declares a local variable, optionally initialized.
type DeclStmt struct {
	P    token.Pos
	Decl *VarDecl
	Init Expr // may be nil
}

// AssignStmt stores RHS into the LHS lvalue.
type AssignStmt struct {
	P   token.Pos
	LHS Expr
	RHS Expr
}

// ExprStmt evaluates an expression (a call) for its side effects.
type ExprStmt struct {
	P token.Pos
	X Expr
}

// IfStmt is a conditional with an optional else arm.
type IfStmt struct {
	P    token.Pos
	Cond Expr
	Then Stmt
	Else Stmt // may be nil
}

// WhileStmt loops while Cond is true.
type WhileStmt struct {
	P    token.Pos
	Cond Expr
	Body Stmt
}

// ForStmt is the C-style counted loop.
type ForStmt struct {
	P    token.Pos
	Init Stmt // DeclStmt or AssignStmt; may be nil
	Cond Expr // may be nil (treated as true)
	Post Stmt // AssignStmt; may be nil
	Body Stmt
}

// ReturnStmt returns from the enclosing function.
type ReturnStmt struct {
	P token.Pos
	X Expr // may be nil
}

// BarrierStmt is a global barrier: all processes must arrive before
// any proceeds. Barriers delimit the phases found by non-concurrency
// analysis.
type BarrierStmt struct {
	P token.Pos
}

// AcquireStmt acquires a lock (spin until free).
type AcquireStmt struct {
	P    token.Pos
	Lock Expr // Ident or IndexExpr naming a lock
}

// ReleaseStmt releases a lock.
type ReleaseStmt struct {
	P    token.Pos
	Lock Expr
}

func (s *BlockStmt) Pos() token.Pos   { return s.P }
func (s *DeclStmt) Pos() token.Pos    { return s.P }
func (s *AssignStmt) Pos() token.Pos  { return s.P }
func (s *ExprStmt) Pos() token.Pos    { return s.P }
func (s *IfStmt) Pos() token.Pos      { return s.P }
func (s *WhileStmt) Pos() token.Pos   { return s.P }
func (s *ForStmt) Pos() token.Pos     { return s.P }
func (s *ReturnStmt) Pos() token.Pos  { return s.P }
func (s *BarrierStmt) Pos() token.Pos { return s.P }
func (s *AcquireStmt) Pos() token.Pos { return s.P }
func (s *ReleaseStmt) Pos() token.Pos { return s.P }

func (*BlockStmt) stmtNode()   {}
func (*DeclStmt) stmtNode()    {}
func (*AssignStmt) stmtNode()  {}
func (*ExprStmt) stmtNode()    {}
func (*IfStmt) stmtNode()      {}
func (*WhileStmt) stmtNode()   {}
func (*ForStmt) stmtNode()     {}
func (*ReturnStmt) stmtNode()  {}
func (*BarrierStmt) stmtNode() {}
func (*AcquireStmt) stmtNode() {}
func (*ReleaseStmt) stmtNode() {}

// ---------------------------------------------------------------------------
// Expressions

// Expr is implemented by all expression nodes.
type Expr interface {
	Node
	exprNode()
}

// Ident names a variable, parameter, or function.
type Ident struct {
	P    token.Pos
	Name string
}

// IntLit is an integer literal.
type IntLit struct {
	P     token.Pos
	Value int64
}

// FloatLit is a floating-point literal.
type FloatLit struct {
	P     token.Pos
	Value float64
}

// PidExpr is the built-in process id (0..nprocs-1), the seed PDV.
type PidExpr struct {
	P token.Pos
}

// NprocsExpr is the built-in process count.
type NprocsExpr struct {
	P token.Pos
}

// BinaryExpr applies a binary operator.
type BinaryExpr struct {
	P    token.Pos
	Op   token.Kind
	X, Y Expr
}

// UnaryExpr applies unary - or !.
type UnaryExpr struct {
	P  token.Pos
	Op token.Kind
	X  Expr
}

// DerefExpr dereferences a pointer: *p. Indirection through arithmetic
// expressions is disallowed by the type checker (paper §2).
type DerefExpr struct {
	P token.Pos
	X Expr
}

// IndexExpr subscripts an array: X[Index].
type IndexExpr struct {
	P     token.Pos
	X     Expr
	Index Expr
}

// FieldExpr selects a struct member: X.Name or X->Name.
type FieldExpr struct {
	P     token.Pos
	X     Expr
	Name  string
	Arrow bool // true for ->
}

// CallExpr calls a user-defined function.
type CallExpr struct {
	P    token.Pos
	Name string
	Args []Expr
}

// AllocExpr allocates shared heap storage: alloc(T) or alloc(T, n)
// for an array of n elements. The result is a pointer to zeroed
// storage in the shared heap. With PerProc set (spelled allocpp) the
// storage comes from the executing process's arena instead — the
// mechanism behind the indirection transformation.
type AllocExpr struct {
	P       token.Pos
	Type    *TypeExpr
	Count   Expr // may be nil (single object)
	PerProc bool
}

func (e *Ident) Pos() token.Pos      { return e.P }
func (e *IntLit) Pos() token.Pos     { return e.P }
func (e *FloatLit) Pos() token.Pos   { return e.P }
func (e *PidExpr) Pos() token.Pos    { return e.P }
func (e *NprocsExpr) Pos() token.Pos { return e.P }
func (e *BinaryExpr) Pos() token.Pos { return e.P }
func (e *UnaryExpr) Pos() token.Pos  { return e.P }
func (e *DerefExpr) Pos() token.Pos  { return e.P }
func (e *IndexExpr) Pos() token.Pos  { return e.P }
func (e *FieldExpr) Pos() token.Pos  { return e.P }
func (e *CallExpr) Pos() token.Pos   { return e.P }
func (e *AllocExpr) Pos() token.Pos  { return e.P }

func (*Ident) exprNode()      {}
func (*IntLit) exprNode()     {}
func (*FloatLit) exprNode()   {}
func (*PidExpr) exprNode()    {}
func (*NprocsExpr) exprNode() {}
func (*BinaryExpr) exprNode() {}
func (*UnaryExpr) exprNode()  {}
func (*DerefExpr) exprNode()  {}
func (*IndexExpr) exprNode()  {}
func (*FieldExpr) exprNode()  {}
func (*CallExpr) exprNode()   {}
func (*AllocExpr) exprNode()  {}
