package parser

import (
	"math/rand"
	"testing"
	"testing/quick"

	"falseshare/internal/lang/ast"
)

// A pool of program fragments used to build random mutations.
var fragments = []string{
	"shared int a[64];", "lock l;", "struct S { int v; };",
	"void main() {", "}", "{", "if (pid == 0)", "else", "while (a[0] > 0)",
	"for (int i = 0; i < 8; i = i + 1)", "a[i] = a[i] + 1;", "barrier;",
	"acquire(l);", "release(l);", "return;", "int x;", "x = alloc(int, 4);",
	"forall (int i = 0; i < 8)", "-> . , ; ( ) [ ]", "1.5 + * / %", "==",
}

// Property: the parser neither panics nor loops forever on arbitrary
// concatenations of token fragments — it either parses or reports
// errors.
func TestParserTotalOnFragmentSoup(t *testing.T) {
	f := func(seed int64, nRaw uint8) bool {
		r := rand.New(rand.NewSource(seed))
		n := int(nRaw%30) + 1
		src := ""
		for i := 0; i < n; i++ {
			src += fragments[r.Intn(len(fragments))] + "\n"
		}
		done := make(chan bool, 1)
		go func() {
			defer func() {
				if recover() != nil {
					done <- false
					return
				}
				done <- true
			}()
			Parse(src)
		}()
		return <-done
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 400}); err != nil {
		t.Fatal(err)
	}
}

// Property: valid programs survive a print -> parse -> print fixpoint.
func TestPrintParseFixpointOnWorkloadShapes(t *testing.T) {
	srcs := []string{
		`
struct T { int a; double b; struct T *n; };
shared struct T *q[64];
shared int v[8][16];
lock l;
void f(int x) { if (x > 0) { f(x - 1); } }
void main() {
    struct T *p;
    p = alloc(struct T, 3);
    p[0].a = 1;
    q[pid] = p;
    v[pid][pid] = v[pid][pid] + 1;
    acquire(l);
    release(l);
    barrier;
    f(3);
}
`,
		`
shared double m[4][4];
void main() {
    forall (int i = 0; i < 4) {
        m[i][i] = 1.0;
    }
    while (m[0][0] > 2.0) {
        m[0][0] = m[0][0] - 1.0;
    }
}
`,
	}
	for _, src := range srcs {
		f1, err := Parse(src)
		if err != nil {
			t.Fatalf("parse: %v", err)
		}
		p1 := astPrint(f1)
		f2, err := Parse(p1)
		if err != nil {
			t.Fatalf("reparse: %v\n%s", err, p1)
		}
		p2 := astPrint(f2)
		if p1 != p2 {
			t.Errorf("fixpoint violated:\n--- p1 ---\n%s\n--- p2 ---\n%s", p1, p2)
		}
	}
}

func astPrint(f *ast.File) string { return ast.Print(f) }
