package parser

import (
	"testing"
	"time"
)

func TestProbeHang(t *testing.T) {
	inputs := []string{
		"void main() { a[0] = 07; }",
		"shared int a[4]; void main() { a[0] = 07; }",
		"void main() { x = 08; }",
		"void main() { ",
		"void main() { } }",
		"void main() { for (;;) { } }",
		"void main() { for (int i = 0 i < 1; ) { } }",
		"struct S { int x };",
		"struct S { };",
		"void f( { }",
		"forall",
		"void main() { if () { } }",
		"void main() { 1 + ; }",
		"#void main() { }",
		"void main() { a[ }",
		"void main() { a-> }",
		"void main() { *p = 1; }",
		"void main() { p->->x = 1; }",
	}
	for _, in := range inputs {
		done := make(chan struct{})
		go func(s string) {
			defer close(done)
			Parse(s)
		}(in)
		select {
		case <-done:
		case <-time.After(2 * time.Second):
			t.Fatalf("parser hang on %q", in)
		}
	}
}
