package parser

import (
	"strings"
	"testing"

	"falseshare/internal/lang/ast"
)

func TestForallLowering(t *testing.T) {
	src := `
shared int a[64];
void main() {
    forall (int i = 0; i < 64) {
        a[i] = a[i] + 1;
    }
}
`
	f, err := Parse(src)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	out := ast.Print(f)
	// The lowered form: cyclic distribution plus a trailing barrier.
	for _, want := range []string{
		"for (int i = 0 + pid; i < 64; i = i + nprocs)",
		"barrier;",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("lowered output missing %q:\n%s", want, out)
		}
	}
}

func TestForallErrors(t *testing.T) {
	cases := []struct{ src, want string }{
		{`void main() { forall (double d = 0; d < 4) { } }`, "plain int"},
		{`void main() { forall (int i = 0; j < 4) { } }`, "induction variable"},
	}
	for _, tc := range cases {
		_, err := Parse(tc.src)
		if err == nil || !strings.Contains(err.Error(), tc.want) {
			t.Errorf("Parse(%q): err = %v, want containing %q", tc.src, err, tc.want)
		}
	}
}
