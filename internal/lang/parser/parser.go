// Package parser implements a recursive-descent parser for parc.
package parser

import (
	"fmt"
	"strconv"

	"falseshare/internal/lang/ast"
	"falseshare/internal/lang/lexer"
	"falseshare/internal/lang/token"
)

// Error is a syntax error with a source position.
type Error struct {
	Pos token.Pos
	Msg string
}

func (e *Error) Error() string { return fmt.Sprintf("%s: %s", e.Pos, e.Msg) }

// ErrorList collects parse errors.
type ErrorList []*Error

func (l ErrorList) Error() string {
	switch len(l) {
	case 0:
		return "no errors"
	case 1:
		return l[0].Error()
	}
	return fmt.Sprintf("%s (and %d more errors)", l[0], len(l)-1)
}

// Parse parses a complete parc translation unit.
func Parse(src string) (*ast.File, error) {
	p := newParser(src)
	f := p.file()
	if len(p.errs) > 0 {
		return f, p.errs
	}
	return f, nil
}

// ParseExpr parses a single expression (used by tests and tools).
func ParseExpr(src string) (ast.Expr, error) {
	p := newParser(src)
	e := p.expr()
	p.expect(token.EOF)
	if len(p.errs) > 0 {
		return e, p.errs
	}
	return e, nil
}

type parser struct {
	lex  *lexer.Lexer
	tok  token.Token
	next token.Token
	errs ErrorList
}

func newParser(src string) *parser {
	p := &parser{lex: lexer.New(src)}
	p.tok = p.lex.Next()
	p.next = p.lex.Next()
	return p
}

func (p *parser) advance() {
	p.tok = p.next
	p.next = p.lex.Next()
}

func (p *parser) errorf(pos token.Pos, format string, args ...any) {
	if len(p.errs) < 20 {
		p.errs = append(p.errs, &Error{Pos: pos, Msg: fmt.Sprintf(format, args...)})
	}
}

func (p *parser) expect(k token.Kind) token.Token {
	t := p.tok
	if t.Kind != k {
		p.errorf(t.Pos, "expected %s, found %s", k, t)
		// Do not consume: give the caller's follow-set a chance.
		if k == token.SEMI || k == token.RPAREN || k == token.RBRACE || k == token.RBRACKET {
			return t
		}
	}
	p.advance()
	return t
}

func (p *parser) at(k token.Kind) bool { return p.tok.Kind == k }

func (p *parser) accept(k token.Kind) bool {
	if p.at(k) {
		p.advance()
		return true
	}
	return false
}

// atType reports whether the current token starts a type.
func (p *parser) atType() bool {
	switch p.tok.Kind {
	case token.KW_INT, token.KW_DOUBLE, token.KW_VOID, token.KW_STRUCT:
		return true
	}
	return false
}

// typeExpr parses: ("int"|"double"|"void"|"struct" IDENT) "*"*
func (p *parser) typeExpr() *ast.TypeExpr {
	t := &ast.TypeExpr{P: p.tok.Pos}
	switch p.tok.Kind {
	case token.KW_INT:
		t.Name = "int"
		p.advance()
	case token.KW_DOUBLE:
		t.Name = "double"
		p.advance()
	case token.KW_VOID:
		t.Name = "void"
		p.advance()
	case token.KW_STRUCT:
		p.advance()
		t.Struct = true
		t.Name = p.expect(token.IDENT).Lit
	default:
		p.errorf(p.tok.Pos, "expected type, found %s", p.tok)
		p.advance()
		t.Name = "int"
	}
	for p.accept(token.STAR) {
		t.Stars++
	}
	return t
}

// file parses the translation unit.
func (p *parser) file() *ast.File {
	f := &ast.File{}
	for !p.at(token.EOF) {
		start := p.tok
		switch p.tok.Kind {
		case token.KW_STRUCT:
			// Either a struct declaration or a file-scope variable (or
			// function) of struct type. Commit to "struct IDENT" and
			// then branch on the next token.
			pos := p.tok.Pos
			p.advance()
			name := p.expect(token.IDENT).Lit
			if p.at(token.LBRACE) {
				f.Structs = append(f.Structs, p.structDeclRest(pos, name))
				continue
			}
			typ := &ast.TypeExpr{P: pos, Name: name, Struct: true}
			for p.accept(token.STAR) {
				typ.Stars++
			}
			vname := p.expect(token.IDENT).Lit
			if p.at(token.LPAREN) {
				f.Funcs = append(f.Funcs, p.funcRest(pos, typ, vname))
				continue
			}
			p.errorf(pos, "file-scope variable %q needs an explicit storage class (shared or private)", vname)
			d := &ast.VarDecl{P: pos, Storage: ast.Shared, Type: typ, Name: vname}
			for p.accept(token.LBRACKET) {
				d.Dims = append(d.Dims, p.expr())
				p.expect(token.RBRACKET)
			}
			p.expect(token.SEMI)
			f.Globals = append(f.Globals, d)
		case token.KW_SHARED, token.KW_PRIVATE, token.KW_LOCK:
			p.global(f)
		case token.KW_INT, token.KW_DOUBLE, token.KW_VOID:
			p.globalOrFunc(f)
		default:
			p.errorf(p.tok.Pos, "expected declaration, found %s", p.tok)
			p.advance()
		}
		if p.tok.Pos == start.Pos && p.tok.Kind == start.Kind && !p.at(token.EOF) {
			// No progress: skip the token to guarantee termination.
			p.advance()
		}
	}
	return f
}

// structDeclRest parses a struct declaration body after "struct NAME".
func (p *parser) structDeclRest(pos token.Pos, name string) *ast.StructDecl {
	p.expect(token.LBRACE)
	d := &ast.StructDecl{P: pos, Name: name}
	for !p.at(token.RBRACE) && !p.at(token.EOF) {
		ft := p.typeExpr()
		fname := p.expect(token.IDENT).Lit
		fd := &ast.FieldDecl{P: ft.P, Type: ft, Name: fname}
		for p.accept(token.LBRACKET) {
			fd.Dims = append(fd.Dims, p.expr())
			p.expect(token.RBRACKET)
		}
		p.expect(token.SEMI)
		d.Fields = append(d.Fields, fd)
	}
	p.expect(token.RBRACE)
	p.expect(token.SEMI)
	return d
}

// global parses a file-scope variable with an explicit storage class,
// or a lock declaration.
func (p *parser) global(f *ast.File) {
	pos := p.tok.Pos
	var storage ast.StorageClass
	switch p.tok.Kind {
	case token.KW_SHARED:
		storage = ast.Shared
		p.advance()
	case token.KW_PRIVATE:
		storage = ast.Private
		p.advance()
	case token.KW_LOCK:
		p.advance()
		name := p.expect(token.IDENT).Lit
		d := &ast.VarDecl{P: pos, Storage: ast.Lock, Name: name}
		for p.accept(token.LBRACKET) {
			d.Dims = append(d.Dims, p.expr())
			p.expect(token.RBRACKET)
		}
		p.expect(token.SEMI)
		f.Globals = append(f.Globals, d)
		return
	default:
		storage = ast.Shared
	}
	typ := p.typeExpr()
	name := p.expect(token.IDENT).Lit
	d := &ast.VarDecl{P: pos, Storage: storage, Type: typ, Name: name}
	for p.accept(token.LBRACKET) {
		d.Dims = append(d.Dims, p.expr())
		p.expect(token.RBRACKET)
	}
	p.expect(token.SEMI)
	f.Globals = append(f.Globals, d)
}

// globalOrFunc parses a declaration that begins with a bare type:
// either a function definition or an (implicitly shared) global.
func (p *parser) globalOrFunc(f *ast.File) {
	pos := p.tok.Pos
	typ := p.typeExpr()
	name := p.expect(token.IDENT).Lit
	if p.at(token.LPAREN) {
		f.Funcs = append(f.Funcs, p.funcRest(pos, typ, name))
		return
	}
	// A file-scope variable without a storage class is an error in
	// parc (the programmer must say shared or private), but we parse
	// it as shared and let the type checker report it.
	d := &ast.VarDecl{P: pos, Storage: ast.Shared, Type: typ, Name: name}
	for p.accept(token.LBRACKET) {
		d.Dims = append(d.Dims, p.expr())
		p.expect(token.RBRACKET)
	}
	p.expect(token.SEMI)
	p.errorf(pos, "file-scope variable %q needs an explicit storage class (shared or private)", name)
	f.Globals = append(f.Globals, d)
}

func (p *parser) funcRest(pos token.Pos, ret *ast.TypeExpr, name string) *ast.FuncDecl {
	fn := &ast.FuncDecl{P: pos, Ret: ret, Name: name}
	p.expect(token.LPAREN)
	for !p.at(token.RPAREN) && !p.at(token.EOF) {
		if len(fn.Params) > 0 {
			p.expect(token.COMMA)
		}
		if p.at(token.KW_VOID) && p.next.Kind == token.RPAREN {
			p.advance()
			break
		}
		pt := p.typeExpr()
		pname := p.expect(token.IDENT).Lit
		fn.Params = append(fn.Params, &ast.ParamDecl{P: pt.P, Type: pt, Name: pname})
	}
	p.expect(token.RPAREN)
	fn.Body = p.block()
	return fn
}

func (p *parser) block() *ast.BlockStmt {
	pos := p.expect(token.LBRACE).Pos
	b := &ast.BlockStmt{P: pos}
	for !p.at(token.RBRACE) && !p.at(token.EOF) {
		before := p.tok
		b.List = append(b.List, p.stmt())
		if p.tok.Pos == before.Pos && p.tok.Kind == before.Kind && !p.at(token.EOF) {
			p.advance()
		}
	}
	p.expect(token.RBRACE)
	return b
}

func (p *parser) stmt() ast.Stmt {
	pos := p.tok.Pos
	switch p.tok.Kind {
	case token.LBRACE:
		return p.block()
	case token.KW_IF:
		p.advance()
		p.expect(token.LPAREN)
		cond := p.expr()
		p.expect(token.RPAREN)
		then := p.stmt()
		var els ast.Stmt
		if p.accept(token.KW_ELSE) {
			els = p.stmt()
		}
		return &ast.IfStmt{P: pos, Cond: cond, Then: then, Else: els}
	case token.KW_WHILE:
		p.advance()
		p.expect(token.LPAREN)
		cond := p.expr()
		p.expect(token.RPAREN)
		body := p.stmt()
		return &ast.WhileStmt{P: pos, Cond: cond, Body: body}
	case token.KW_FOR:
		return p.forStmt()
	case token.KW_FORALL:
		return p.forallStmt()
	case token.KW_RETURN:
		p.advance()
		var x ast.Expr
		if !p.at(token.SEMI) {
			x = p.expr()
		}
		p.expect(token.SEMI)
		return &ast.ReturnStmt{P: pos, X: x}
	case token.KW_BARRIER:
		p.advance()
		p.expect(token.SEMI)
		return &ast.BarrierStmt{P: pos}
	case token.KW_ACQUIRE:
		p.advance()
		p.expect(token.LPAREN)
		l := p.expr()
		p.expect(token.RPAREN)
		p.expect(token.SEMI)
		return &ast.AcquireStmt{P: pos, Lock: l}
	case token.KW_RELEASE:
		p.advance()
		p.expect(token.LPAREN)
		l := p.expr()
		p.expect(token.RPAREN)
		p.expect(token.SEMI)
		return &ast.ReleaseStmt{P: pos, Lock: l}
	case token.KW_INT, token.KW_DOUBLE, token.KW_STRUCT:
		return p.declStmt()
	case token.SEMI:
		p.advance()
		return &ast.BlockStmt{P: pos} // empty statement
	default:
		return p.simpleStmt(true)
	}
}

// declStmt parses a local declaration: type name dims (= expr)? ;
func (p *parser) declStmt() ast.Stmt {
	pos := p.tok.Pos
	typ := p.typeExpr()
	name := p.expect(token.IDENT).Lit
	d := &ast.VarDecl{P: pos, Storage: ast.Auto, Type: typ, Name: name}
	for p.accept(token.LBRACKET) {
		d.Dims = append(d.Dims, p.expr())
		p.expect(token.RBRACKET)
	}
	ds := &ast.DeclStmt{P: pos, Decl: d}
	if p.accept(token.ASSIGN) {
		ds.Init = p.expr()
	}
	p.expect(token.SEMI)
	return ds
}

// simpleStmt parses an assignment or expression statement. When
// wantSemi is true the trailing semicolon is consumed.
func (p *parser) simpleStmt(wantSemi bool) ast.Stmt {
	pos := p.tok.Pos
	lhs := p.expr()
	var s ast.Stmt
	if p.accept(token.ASSIGN) {
		rhs := p.expr()
		s = &ast.AssignStmt{P: pos, LHS: lhs, RHS: rhs}
	} else {
		s = &ast.ExprStmt{P: pos, X: lhs}
	}
	if wantSemi {
		p.expect(token.SEMI)
	}
	return s
}

func (p *parser) forStmt() ast.Stmt {
	pos := p.expect(token.KW_FOR).Pos
	p.expect(token.LPAREN)
	var init ast.Stmt
	if !p.at(token.SEMI) {
		if p.atType() {
			init = p.declStmt() // consumes the semicolon
		} else {
			init = p.simpleStmt(false)
			p.expect(token.SEMI)
		}
	} else {
		p.expect(token.SEMI)
	}
	var cond ast.Expr
	if !p.at(token.SEMI) {
		cond = p.expr()
	}
	p.expect(token.SEMI)
	var post ast.Stmt
	if !p.at(token.RPAREN) {
		post = p.simpleStmt(false)
	}
	p.expect(token.RPAREN)
	body := p.stmt()
	return &ast.ForStmt{P: pos, Init: init, Cond: cond, Post: post, Body: body}
}

// forallStmt parses and lowers the HPF-style distributed loop the
// paper's §2 footnote maps onto the fork/join model:
//
//	forall (int i = LO; i < HI) S
//
// becomes
//
//	{ for (int i = LO + pid; i < HI; i = i + nprocs) S  barrier; }
//
// The induction variable acts as a PDV-parameterized subscript (its
// values partition cyclically across processes) and the implicit
// trailing barrier separates the forall from subsequent phases —
// exactly HPF FORALL semantics. Like barriers, foralls are only legal
// in main (the non-concurrency analysis enforces it).
func (p *parser) forallStmt() ast.Stmt {
	pos := p.expect(token.KW_FORALL).Pos
	p.expect(token.LPAREN)
	typ := p.typeExpr()
	if typ.Name != "int" || typ.Stars != 0 || typ.Struct {
		p.errorf(pos, "forall induction variable must be a plain int")
	}
	name := p.expect(token.IDENT).Lit
	p.expect(token.ASSIGN)
	lo := p.expr()
	p.expect(token.SEMI)
	// The bound must have the form "name < expr".
	condPos := p.tok.Pos
	id := p.expect(token.IDENT)
	if id.Lit != name {
		p.errorf(condPos, "forall bound must test the induction variable %q", name)
	}
	p.expect(token.LT)
	hi := p.expr()
	p.expect(token.RPAREN)
	body := p.stmt()

	decl := &ast.VarDecl{P: pos, Storage: ast.Auto, Type: &ast.TypeExpr{P: pos, Name: "int"}, Name: name}
	loop := &ast.ForStmt{
		P: pos,
		Init: &ast.DeclStmt{P: pos, Decl: decl,
			Init: &ast.BinaryExpr{P: pos, Op: token.PLUS, X: lo, Y: &ast.PidExpr{P: pos}}},
		Cond: &ast.BinaryExpr{P: condPos, Op: token.LT, X: &ast.Ident{P: condPos, Name: name}, Y: hi},
		Post: &ast.AssignStmt{P: pos, LHS: &ast.Ident{P: pos, Name: name},
			RHS: &ast.BinaryExpr{P: pos, Op: token.PLUS, X: &ast.Ident{P: pos, Name: name}, Y: &ast.NprocsExpr{P: pos}}},
		Body: body,
	}
	return &ast.BlockStmt{P: pos, List: []ast.Stmt{loop, &ast.BarrierStmt{P: pos}}}
}

// ---------------------------------------------------------------------------
// Expressions (precedence climbing)

func (p *parser) expr() ast.Expr { return p.binExpr(1) }

func (p *parser) binExpr(minPrec int) ast.Expr {
	lhs := p.unary()
	for {
		prec := p.tok.Kind.Precedence()
		if prec < minPrec {
			return lhs
		}
		op := p.tok.Kind
		pos := p.tok.Pos
		p.advance()
		rhs := p.binExpr(prec + 1)
		lhs = &ast.BinaryExpr{P: pos, Op: op, X: lhs, Y: rhs}
	}
}

func (p *parser) unary() ast.Expr {
	pos := p.tok.Pos
	switch p.tok.Kind {
	case token.MINUS:
		p.advance()
		return &ast.UnaryExpr{P: pos, Op: token.MINUS, X: p.unary()}
	case token.NOT:
		p.advance()
		return &ast.UnaryExpr{P: pos, Op: token.NOT, X: p.unary()}
	case token.STAR:
		p.advance()
		return &ast.DerefExpr{P: pos, X: p.unary()}
	}
	return p.postfix()
}

func (p *parser) postfix() ast.Expr {
	x := p.primary()
	for {
		pos := p.tok.Pos
		switch p.tok.Kind {
		case token.LBRACKET:
			p.advance()
			idx := p.expr()
			p.expect(token.RBRACKET)
			x = &ast.IndexExpr{P: pos, X: x, Index: idx}
		case token.DOT:
			p.advance()
			name := p.expect(token.IDENT).Lit
			x = &ast.FieldExpr{P: pos, X: x, Name: name}
		case token.ARROW:
			p.advance()
			name := p.expect(token.IDENT).Lit
			x = &ast.FieldExpr{P: pos, X: x, Name: name, Arrow: true}
		default:
			return x
		}
	}
}

func (p *parser) primary() ast.Expr {
	pos := p.tok.Pos
	switch p.tok.Kind {
	case token.INTLIT:
		lit := p.tok.Lit
		p.advance()
		v, err := strconv.ParseInt(lit, 10, 64)
		if err != nil {
			p.errorf(pos, "invalid integer literal %q", lit)
		}
		return &ast.IntLit{P: pos, Value: v}
	case token.FLOATLIT:
		lit := p.tok.Lit
		p.advance()
		v, err := strconv.ParseFloat(lit, 64)
		if err != nil {
			p.errorf(pos, "invalid float literal %q", lit)
		}
		return &ast.FloatLit{P: pos, Value: v}
	case token.KW_PID:
		p.advance()
		return &ast.PidExpr{P: pos}
	case token.KW_NPROCS:
		p.advance()
		return &ast.NprocsExpr{P: pos}
	case token.KW_ALLOC, token.KW_ALLOCPP:
		perProc := p.tok.Kind == token.KW_ALLOCPP
		p.advance()
		p.expect(token.LPAREN)
		t := p.typeExpr()
		a := &ast.AllocExpr{P: pos, Type: t, PerProc: perProc}
		if p.accept(token.COMMA) {
			a.Count = p.expr()
		}
		p.expect(token.RPAREN)
		return a
	case token.IDENT:
		name := p.tok.Lit
		p.advance()
		if p.at(token.LPAREN) {
			p.advance()
			c := &ast.CallExpr{P: pos, Name: name}
			for !p.at(token.RPAREN) && !p.at(token.EOF) {
				if len(c.Args) > 0 {
					p.expect(token.COMMA)
				}
				c.Args = append(c.Args, p.expr())
			}
			p.expect(token.RPAREN)
			return c
		}
		return &ast.Ident{P: pos, Name: name}
	case token.LPAREN:
		p.advance()
		e := p.expr()
		p.expect(token.RPAREN)
		return e
	default:
		p.errorf(pos, "expected expression, found %s", p.tok)
		p.advance()
		return &ast.IntLit{P: pos, Value: 0}
	}
}
