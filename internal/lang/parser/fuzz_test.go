package parser

import (
	"testing"

	"falseshare/internal/lang/ast"
	"falseshare/internal/workload"
)

// FuzzParse throws mutated program text at the parser. Two
// properties: the parser never panics (it returns errors), and any
// file it accepts round-trips through the printer — print then
// reparse succeeds, so the two agree on the language.
func FuzzParse(f *testing.F) {
	for _, b := range workload.All() {
		f.Add(b.Source(1))
	}
	seeds := []string{
		"shared int a[16];\nvoid main() { a[pid] = a[pid] + 1; }\n",
		"struct S { int x; struct S *next; };\nshared struct S *p;\nvoid main() { p = alloc(struct S); p->x = 1; }\n",
		"lock l;\nshared int n;\nvoid main() { acquire(l); n = n + 1; release(l); barrier; }\n",
		"shared double w[8][8];\nvoid main() { forall (int i = 0; i < 8; i = i + 1) { w[i][pid] = 0.5; } }\n",
		"void main() { for (int i = pid; i < 64; i = i + nprocs) { } }\n",
		"// comment\nvoid main() { int x; x = -1 * (2 + 3) / 4 % 5; while (x != 0) { x = x - 1; } }\n",
		"void f(int k) { }\nvoid main() { f(nprocs); if (pid == 0) { } else { } }\n",
		"shared int a[4]; void main() { a[0] = 07; }",
		"void main() { { { } } }",
		"\x00\xff{}[];",
	}
	for _, s := range seeds {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, src string) {
		file, err := Parse(src)
		if err != nil {
			return
		}
		out := ast.Print(file)
		if _, err := Parse(out); err != nil {
			t.Fatalf("printed output does not reparse: %v\ninput:\n%s\nprinted:\n%s", err, src, out)
		}
	})
}
