package parser

import (
	"strings"
	"testing"

	"falseshare/internal/lang/ast"
)

const sample = `
// Per-process histogram with a lock-protected global sum.
struct Node {
    int value;
    int count;
    struct Node *next;
};

shared int hist[64];
shared double sum;
shared struct Node *head;
private int myid;
lock l;
lock cells[16];

int bump(int i) {
    hist[i] = hist[i] + 1;
    return hist[i];
}

void main() {
    int i;
    myid = pid;
    for (i = myid; i < 64; i = i + nprocs) {
        bump(i);
    }
    barrier;
    if (pid == 0) {
        struct Node *p;
        p = alloc(struct Node);
        p->value = 5;
        head = p;
    }
    barrier;
    acquire(l);
    sum = sum + 1.5;
    release(l);
    while (head != 0) {
        head = head->next;
    }
}
`

func TestParseSample(t *testing.T) {
	f, err := Parse(sample)
	if err != nil {
		t.Fatalf("parse error: %v", err)
	}
	if len(f.Structs) != 1 || f.Structs[0].Name != "Node" {
		t.Fatalf("structs: %+v", f.Structs)
	}
	if len(f.Globals) != 6 {
		t.Fatalf("globals: got %d, want 6", len(f.Globals))
	}
	if got := f.Global("l").Storage; got != ast.Lock {
		t.Errorf("lock storage: %v", got)
	}
	if got := f.Global("hist").Storage; got != ast.Shared {
		t.Errorf("hist storage: %v", got)
	}
	if got := f.Global("myid").Storage; got != ast.Private {
		t.Errorf("myid storage: %v", got)
	}
	if f.Func("main") == nil || f.Func("bump") == nil {
		t.Fatalf("missing functions")
	}
}

func TestPrintRoundTrip(t *testing.T) {
	f1, err := Parse(sample)
	if err != nil {
		t.Fatalf("parse 1: %v", err)
	}
	src2 := ast.Print(f1)
	f2, err := Parse(src2)
	if err != nil {
		t.Fatalf("parse of printed output failed: %v\n%s", err, src2)
	}
	src3 := ast.Print(f2)
	if src2 != src3 {
		t.Fatalf("print not idempotent:\n--- first ---\n%s\n--- second ---\n%s", src2, src3)
	}
}

func TestParseErrors(t *testing.T) {
	cases := []struct {
		src  string
		want string
	}{
		{"int g;", "storage class"},
		{"void main() { x = ; }", "expected expression"},
		{"void main() { if x { } }", "expected ("},
		{"shared int a[;", "expected expression"},
	}
	for _, tc := range cases {
		_, err := Parse(tc.src)
		if err == nil {
			t.Errorf("Parse(%q): expected error containing %q, got nil", tc.src, tc.want)
			continue
		}
		if !strings.Contains(err.Error(), tc.want) {
			t.Errorf("Parse(%q): error %q does not contain %q", tc.src, err, tc.want)
		}
	}
}

func TestParseExprPrecedence(t *testing.T) {
	e, err := ParseExpr("1 + 2 * 3 < 4 && 5 == 6")
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	got := ast.PrintExpr(e)
	want := "1 + 2 * 3 < 4 && 5 == 6"
	if got != want {
		t.Errorf("printed %q, want %q", got, want)
	}
	// The top node must be &&.
	b, ok := e.(*ast.BinaryExpr)
	if !ok || b.Op.String() != "&&" {
		t.Errorf("top operator: %v", e)
	}
}

func TestForLoopForms(t *testing.T) {
	src := `
void main() {
    int s;
    for (int i = 0; i < 10; i = i + 1) { s = s + i; }
    for (; s > 0; ) { s = s - 1; }
    for (s = 3; ; s = s - 1) { if (s == 0) { return; } }
}
`
	if _, err := Parse(src); err != nil {
		t.Fatalf("parse: %v", err)
	}
}
