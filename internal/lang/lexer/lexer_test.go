package lexer

import (
	"strings"
	"testing"
	"testing/quick"

	"falseshare/internal/lang/token"
)

func kinds(t *testing.T, src string) []token.Kind {
	t.Helper()
	toks, errs := ScanAll(src)
	if len(errs) > 0 {
		t.Fatalf("scan errors: %v", errs)
	}
	out := make([]token.Kind, 0, len(toks))
	for _, tk := range toks {
		out = append(out, tk.Kind)
	}
	return out
}

func TestOperators(t *testing.T) {
	got := kinds(t, "= == != ! < <= > >= && || + - -> * / % ( ) { } [ ] , ; .")
	want := []token.Kind{
		token.ASSIGN, token.EQ, token.NEQ, token.NOT, token.LT, token.LE,
		token.GT, token.GE, token.LAND, token.LOR, token.PLUS, token.MINUS,
		token.ARROW, token.STAR, token.SLASH, token.PERCENT,
		token.LPAREN, token.RPAREN, token.LBRACE, token.RBRACE,
		token.LBRACKET, token.RBRACKET, token.COMMA, token.SEMI, token.DOT,
		token.EOF,
	}
	if len(got) != len(want) {
		t.Fatalf("got %d tokens, want %d: %v", len(got), len(want), got)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("token %d = %v, want %v", i, got[i], want[i])
		}
	}
}

func TestNumbers(t *testing.T) {
	toks, errs := ScanAll("0 42 3.25 10.0 7")
	if len(errs) > 0 {
		t.Fatalf("errors: %v", errs)
	}
	wantKinds := []token.Kind{token.INTLIT, token.INTLIT, token.FLOATLIT, token.FLOATLIT, token.INTLIT, token.EOF}
	wantLits := []string{"0", "42", "3.25", "10.0", "7", ""}
	for i, tk := range toks {
		if tk.Kind != wantKinds[i] || tk.Lit != wantLits[i] {
			t.Errorf("token %d = %v %q, want %v %q", i, tk.Kind, tk.Lit, wantKinds[i], wantLits[i])
		}
	}
}

func TestDotVsFloat(t *testing.T) {
	// "a.b" is field access, "1.5" is a float literal.
	got := kinds(t, "a.b")
	want := []token.Kind{token.IDENT, token.DOT, token.IDENT, token.EOF}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("a.b tokens: %v", got)
		}
	}
}

func TestComments(t *testing.T) {
	src := `
// line comment with symbols +-*/
x /* block
comment */ y
`
	got := kinds(t, src)
	want := []token.Kind{token.IDENT, token.IDENT, token.EOF}
	if len(got) != len(want) {
		t.Fatalf("tokens: %v", got)
	}
}

func TestUnterminatedComment(t *testing.T) {
	_, errs := ScanAll("x /* never closed")
	if len(errs) != 1 || !strings.Contains(errs[0].Error(), "unterminated") {
		t.Fatalf("errors: %v", errs)
	}
}

func TestIllegalChars(t *testing.T) {
	toks, errs := ScanAll("x @ y | z")
	if len(errs) != 2 {
		t.Fatalf("expected 2 errors, got %v", errs)
	}
	illegal := 0
	for _, tk := range toks {
		if tk.Kind == token.ILLEGAL {
			illegal++
		}
	}
	if illegal != 2 {
		t.Fatalf("illegal tokens = %d, want 2", illegal)
	}
}

func TestPositions(t *testing.T) {
	toks, _ := ScanAll("a\n  bb\n ccc")
	type pos struct{ line, col int }
	want := []pos{{1, 1}, {2, 3}, {3, 2}}
	for i, w := range want {
		if toks[i].Pos.Line != w.line || toks[i].Pos.Col != w.col {
			t.Errorf("token %d at %v, want %d:%d", i, toks[i].Pos, w.line, w.col)
		}
	}
}

func TestKeywordsScan(t *testing.T) {
	got := kinds(t, "shared private lock barrier acquire release alloc allocpp pid nprocs")
	want := []token.Kind{
		token.KW_SHARED, token.KW_PRIVATE, token.KW_LOCK, token.KW_BARRIER,
		token.KW_ACQUIRE, token.KW_RELEASE, token.KW_ALLOC, token.KW_ALLOCPP,
		token.KW_PID, token.KW_NPROCS, token.EOF,
	}
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("token %d = %v, want %v", i, got[i], want[i])
		}
	}
}

// Property: the lexer terminates and produces EOF for arbitrary byte
// strings (no panics, no infinite loops).
func TestLexerTotalOnRandomInput(t *testing.T) {
	f := func(data []byte) bool {
		toks, _ := ScanAll(string(data))
		return len(toks) > 0 && toks[len(toks)-1].Kind == token.EOF
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}

// Property: lexing is insensitive to inserted whitespace between
// tokens (token kinds unchanged).
func TestWhitespaceInsensitive(t *testing.T) {
	src := "for(i=0;i<10;i=i+1){a[i]=b.c->d%2;}"
	spaced := "for ( i = 0 ; i < 10 ; i = i + 1 ) { a [ i ] = b . c -> d % 2 ; }"
	a := kinds(t, src)
	b := kinds(t, spaced)
	if len(a) != len(b) {
		t.Fatalf("token counts differ: %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Errorf("token %d: %v vs %v", i, a[i], b[i])
		}
	}
}

func TestDump(t *testing.T) {
	toks, _ := ScanAll("x = 1;")
	d := Dump(toks)
	if !strings.Contains(d, `IDENT("x")`) || !strings.Contains(d, "1:5") {
		t.Errorf("dump output:\n%s", d)
	}
}
