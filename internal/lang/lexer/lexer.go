// Package lexer implements a hand-written scanner for parc source text.
package lexer

import (
	"fmt"
	"strings"

	"falseshare/internal/lang/token"
)

// Error is a lexical error with a source position.
type Error struct {
	Pos token.Pos
	Msg string
}

func (e *Error) Error() string { return fmt.Sprintf("%s: %s", e.Pos, e.Msg) }

// Lexer scans parc source text into tokens.
type Lexer struct {
	src  string
	off  int // byte offset of next rune
	line int
	col  int
	errs []*Error
}

// New returns a lexer over src.
func New(src string) *Lexer {
	return &Lexer{src: src, line: 1, col: 1}
}

// Errors returns the lexical errors encountered so far.
func (l *Lexer) Errors() []*Error { return l.errs }

func (l *Lexer) errorf(pos token.Pos, format string, args ...any) {
	l.errs = append(l.errs, &Error{Pos: pos, Msg: fmt.Sprintf(format, args...)})
}

func (l *Lexer) peek() byte {
	if l.off >= len(l.src) {
		return 0
	}
	return l.src[l.off]
}

func (l *Lexer) peek2() byte {
	if l.off+1 >= len(l.src) {
		return 0
	}
	return l.src[l.off+1]
}

func (l *Lexer) advance() byte {
	if l.off >= len(l.src) {
		return 0
	}
	c := l.src[l.off]
	l.off++
	if c == '\n' {
		l.line++
		l.col = 1
	} else {
		l.col++
	}
	return c
}

func (l *Lexer) pos() token.Pos { return token.Pos{Line: l.line, Col: l.col} }

func isDigit(c byte) bool { return c >= '0' && c <= '9' }

func isLetter(c byte) bool {
	return c == '_' || (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z')
}

// skipSpaceAndComments consumes whitespace and // and /* */ comments.
func (l *Lexer) skipSpaceAndComments() {
	for {
		c := l.peek()
		switch {
		case c == ' ' || c == '\t' || c == '\r' || c == '\n':
			l.advance()
		case c == '/' && l.peek2() == '/':
			for l.peek() != '\n' && l.peek() != 0 {
				l.advance()
			}
		case c == '/' && l.peek2() == '*':
			start := l.pos()
			l.advance()
			l.advance()
			closed := false
			for l.peek() != 0 {
				if l.peek() == '*' && l.peek2() == '/' {
					l.advance()
					l.advance()
					closed = true
					break
				}
				l.advance()
			}
			if !closed {
				l.errorf(start, "unterminated block comment")
			}
		default:
			return
		}
	}
}

// Next returns the next token in the input.
func (l *Lexer) Next() token.Token {
	l.skipSpaceAndComments()
	pos := l.pos()
	c := l.peek()
	if c == 0 {
		return token.Token{Kind: token.EOF, Pos: pos}
	}

	switch {
	case isLetter(c):
		start := l.off
		for isLetter(l.peek()) || isDigit(l.peek()) {
			l.advance()
		}
		lit := l.src[start:l.off]
		kind := token.Lookup(lit)
		if kind == token.IDENT {
			return token.Token{Kind: token.IDENT, Pos: pos, Lit: lit}
		}
		return token.Token{Kind: kind, Pos: pos, Lit: lit}

	case isDigit(c):
		start := l.off
		for isDigit(l.peek()) {
			l.advance()
		}
		kind := token.INTLIT
		if l.peek() == '.' && isDigit(l.peek2()) {
			kind = token.FLOATLIT
			l.advance()
			for isDigit(l.peek()) {
				l.advance()
			}
		}
		return token.Token{Kind: kind, Pos: pos, Lit: l.src[start:l.off]}
	}

	l.advance()
	two := func(next byte, ifTwo, ifOne token.Kind) token.Token {
		if l.peek() == next {
			l.advance()
			return token.Token{Kind: ifTwo, Pos: pos}
		}
		return token.Token{Kind: ifOne, Pos: pos}
	}

	switch c {
	case '=':
		return two('=', token.EQ, token.ASSIGN)
	case '!':
		return two('=', token.NEQ, token.NOT)
	case '<':
		return two('=', token.LE, token.LT)
	case '>':
		return two('=', token.GE, token.GT)
	case '&':
		return two('&', token.LAND, token.AMP)
	case '|':
		if l.peek() == '|' {
			l.advance()
			return token.Token{Kind: token.LOR, Pos: pos}
		}
		l.errorf(pos, "unexpected character %q (bitwise-or is not in parc)", "|")
		return token.Token{Kind: token.ILLEGAL, Pos: pos, Lit: "|"}
	case '+':
		return token.Token{Kind: token.PLUS, Pos: pos}
	case '-':
		if l.peek() == '>' {
			l.advance()
			return token.Token{Kind: token.ARROW, Pos: pos}
		}
		return token.Token{Kind: token.MINUS, Pos: pos}
	case '*':
		return token.Token{Kind: token.STAR, Pos: pos}
	case '/':
		return token.Token{Kind: token.SLASH, Pos: pos}
	case '%':
		return token.Token{Kind: token.PERCENT, Pos: pos}
	case '(':
		return token.Token{Kind: token.LPAREN, Pos: pos}
	case ')':
		return token.Token{Kind: token.RPAREN, Pos: pos}
	case '{':
		return token.Token{Kind: token.LBRACE, Pos: pos}
	case '}':
		return token.Token{Kind: token.RBRACE, Pos: pos}
	case '[':
		return token.Token{Kind: token.LBRACKET, Pos: pos}
	case ']':
		return token.Token{Kind: token.RBRACKET, Pos: pos}
	case ',':
		return token.Token{Kind: token.COMMA, Pos: pos}
	case ';':
		return token.Token{Kind: token.SEMI, Pos: pos}
	case '.':
		return token.Token{Kind: token.DOT, Pos: pos}
	}

	l.errorf(pos, "unexpected character %q", string(c))
	return token.Token{Kind: token.ILLEGAL, Pos: pos, Lit: string(c)}
}

// ScanAll scans the entire input and returns all tokens up to and
// including EOF. It is a convenience for tests and tools.
func ScanAll(src string) ([]token.Token, []*Error) {
	l := New(src)
	var toks []token.Token
	for {
		t := l.Next()
		toks = append(toks, t)
		if t.Kind == token.EOF {
			break
		}
	}
	return toks, l.Errors()
}

// Dump renders tokens one per line; useful for golden tests.
func Dump(toks []token.Token) string {
	var b strings.Builder
	for _, t := range toks {
		fmt.Fprintf(&b, "%s %s\n", t.Pos, t)
	}
	return b.String()
}
