// Package faultinject provides deterministic, spec-driven fault
// points for testing the experiment stack's recovery paths. Sites in
// the pipeline (the pool's workers, the restructurer, the VM, the
// trace fan-out) call Fire at well-known point names; a fault set
// parsed from FSEXP_FAULTS or -faults decides — purely from the spec,
// hit counts, and a seeded hash of the site detail, never from wall
// clock or scheduling — whether that hit errors, panics, delays, or
// hangs.
//
// A spec is a semicolon-separated list of rules:
//
//	point[=match]:mode[=duration][:after=N][:count=N][:p=F[:seed=N]][:transient]
//
//	pool.worker=fig3/maxflow/N/b16:error      fail exactly that job
//	vm.run:error:after=2:count=1              fail only the 3rd VM run
//	core.restructure:panic:count=1            panic the first restructure
//	pool.worker:delay=5ms                     slow every job by 5ms
//	vm.run:hang:count=1                       hang one run until cancelled
//	pool.worker:error:transient:count=2       two retryable failures
//	pool.worker:error:p=0.25:seed=7           a deterministic 25% of keys
//	worker.cell=matrix/gen-003:exit           kill the worker process
//	                                          that picks up that cell
//	worker.send:corrupt:count=1               mangle one result frame
//
// Points: pool.worker, core.compile, core.restructure, vm.run,
// trace.partee, transform.apply (detail: the decision's target key —
// fail one transformation decision), transform.corrupt (same detail;
// makes the applier emit a deliberately wrong rewrite, a seeded
// miscompile for translation-validation tests), and layout (detail:
// the shared global being laid out). The distributed fabric adds
// worker.cell (fired in a worker process at the start of every
// assigned cell — exit and hang simulate worker crashes and wedges),
// worker.send (the worker's result transmission; corrupt mangles the
// frame so the coordinator must treat the worker as failed), and
// coord.kill (fired in the coordinator at each assignment; an error
// firing there makes the coordinator SIGKILL the assigned worker
// mid-cell — a deterministic, fires-once-globally worker kill).
// The fsd daemon adds serve.handler (fired inside every admitted
// request's pooled job, detail "<endpoint>/<source-hash>" — panic
// and hang exercise containment and deadlines), serve.drain (fired
// at the start of graceful drain), and the artifact store's points
// serve.cache / fabric.cache (fired in Put with details "put/<key>"
// and, inside the commit window between the tmp write and the
// rename, "rename/<key>" — exit there leaves a torn write exactly
// like kill -9; corrupt commits a deliberately damaged entry).
// A literal * matches every point.
//
// Determinism: `after`/`count` count hits on a per-rule atomic counter
// (exact under -j 1; under parallel runs the set of firing hits can
// vary with schedule), while `match` and `p`+`seed` depend only on the
// site detail string — those select the same victims at any -j.
//
// When no fault set is enabled, Fire is one atomic load.
package faultinject

import (
	"context"
	"errors"
	"fmt"
	"hash/fnv"
	"os"
	"strconv"
	"strings"
	"sync/atomic"
	"time"
)

// Mode is the action a rule takes when it fires.
type Mode int

const (
	// ModeError makes the site return an *Error.
	ModeError Mode = iota
	// ModePanic panics at the site (exercises recovery paths).
	ModePanic
	// ModeDelay sleeps for the rule's duration, then proceeds.
	ModeDelay
	// ModeHang blocks until the site's context is cancelled, then
	// returns the context error.
	ModeHang
	// ModeExit terminates the process with the rule's exit code
	// (default 3) — the fabric's worker-crash chaos mode. Only sites
	// that are legitimate whole-process kill points (worker cells)
	// should be targeted with it; the site cannot intercept it.
	ModeExit
	// ModeCorrupt returns an *Error marked Corrupted. Sites that
	// support corruption (the fabric worker's result send) check
	// IsCorrupt and deliberately mangle their payload instead of
	// failing; other sites treat it as a plain injected error.
	ModeCorrupt
)

func (m Mode) String() string {
	switch m {
	case ModeError:
		return "error"
	case ModePanic:
		return "panic"
	case ModeDelay:
		return "delay"
	case ModeHang:
		return "hang"
	case ModeExit:
		return "exit"
	case ModeCorrupt:
		return "corrupt"
	}
	return fmt.Sprintf("mode(%d)", int(m))
}

// Error is an injected failure. It unwraps nothing — it IS the root
// cause — and reports itself transient when the rule says so, which
// the pool's default retry classifier honors.
type Error struct {
	Point     string
	Detail    string
	Retryable bool
	// Corrupted marks a ModeCorrupt injection: the site should mangle
	// its payload rather than fail, if it knows how.
	Corrupted bool
}

func (e *Error) Error() string {
	if e.Detail != "" {
		return fmt.Sprintf("injected fault at %s (%s)", e.Point, e.Detail)
	}
	return "injected fault at " + e.Point
}

// Transient reports whether the fault was declared retryable.
func (e *Error) Transient() bool { return e.Retryable }

// IsCorrupt reports whether err carries a ModeCorrupt injection.
func IsCorrupt(err error) bool {
	var fe *Error
	return errors.As(err, &fe) && fe.Corrupted
}

// Rule is one parsed fault rule.
type Rule struct {
	Point     string        // site name, or "*"
	Match     string        // substring the site detail must contain
	Mode      Mode          // what to do
	Delay     time.Duration // ModeDelay duration
	ExitCode  int           // ModeExit status (default 3)
	After     int64         // skip the first After matching hits
	Count     int64         // fire at most Count times (0: unlimited)
	P         float64       // fire probability over details (0: always)
	Seed      uint64        // seed for the P hash
	Transient bool          // injected errors report Transient() == true

	hits  atomic.Int64
	fires atomic.Int64
}

// Set is a parsed fault specification.
type Set struct {
	Rules []*Rule
}

// enabled is the process-wide fault set (nil: injection off).
var enabled atomic.Pointer[Set]

// Enable installs s as the process-wide fault set (nil disables).
func Enable(s *Set) {
	if s != nil && len(s.Rules) == 0 {
		s = nil
	}
	enabled.Store(s)
}

// Disable turns fault injection off.
func Disable() { enabled.Store(nil) }

// Active reports whether a fault set is enabled.
func Active() bool { return enabled.Load() != nil }

// Parse parses a fault spec (see the package comment for the
// grammar). An empty spec yields an empty set.
func Parse(spec string) (*Set, error) {
	s := &Set{}
	for _, part := range strings.Split(spec, ";") {
		part = strings.TrimSpace(part)
		if part == "" {
			continue
		}
		r, err := parseRule(part)
		if err != nil {
			return nil, fmt.Errorf("faultinject: rule %q: %w", part, err)
		}
		s.Rules = append(s.Rules, r)
	}
	return s, nil
}

func parseRule(spec string) (*Rule, error) {
	fields := strings.Split(spec, ":")
	if len(fields) < 2 {
		return nil, fmt.Errorf("want point:mode, got %d field(s)", len(fields))
	}
	r := &Rule{}
	r.Point, r.Match, _ = strings.Cut(fields[0], "=")
	if r.Point == "" {
		return nil, fmt.Errorf("empty point")
	}

	mode := fields[1]
	var modeArg string
	if k, v, ok := strings.Cut(mode, "="); ok {
		mode, modeArg = k, v
	}
	switch mode {
	case "error":
		r.Mode = ModeError
	case "panic":
		r.Mode = ModePanic
	case "delay":
		r.Mode = ModeDelay
		d, err := time.ParseDuration(modeArg)
		if err != nil || d < 0 {
			return nil, fmt.Errorf("delay needs a duration (delay=5ms), got %q", modeArg)
		}
		r.Delay = d
	case "hang":
		r.Mode = ModeHang
	case "exit":
		r.Mode = ModeExit
		r.ExitCode = 3
		if modeArg != "" {
			n, err := strconv.Atoi(modeArg)
			if err != nil || n < 0 || n > 255 {
				return nil, fmt.Errorf("exit needs a status in [0,255] (exit=7), got %q", modeArg)
			}
			r.ExitCode = n
		}
	case "corrupt":
		r.Mode = ModeCorrupt
	default:
		return nil, fmt.Errorf("unknown mode %q (error|panic|delay|hang|exit|corrupt)", mode)
	}

	for _, f := range fields[2:] {
		key, val, _ := strings.Cut(f, "=")
		switch key {
		case "after":
			n, err := strconv.ParseInt(val, 10, 64)
			if err != nil || n < 0 {
				return nil, fmt.Errorf("after needs a non-negative integer, got %q", val)
			}
			r.After = n
		case "count":
			n, err := strconv.ParseInt(val, 10, 64)
			if err != nil || n < 1 {
				return nil, fmt.Errorf("count needs a positive integer, got %q", val)
			}
			r.Count = n
		case "p":
			p, err := strconv.ParseFloat(val, 64)
			if err != nil || p < 0 || p > 1 {
				return nil, fmt.Errorf("p needs a probability in [0,1], got %q", val)
			}
			r.P = p
		case "seed":
			n, err := strconv.ParseUint(val, 10, 64)
			if err != nil {
				return nil, fmt.Errorf("seed needs an unsigned integer, got %q", val)
			}
			r.Seed = n
		case "transient":
			if val != "" {
				return nil, fmt.Errorf("transient takes no value")
			}
			r.Transient = true
		default:
			return nil, fmt.Errorf("unknown option %q", key)
		}
	}
	return r, nil
}

// FromEnv parses and enables the FSEXP_FAULTS environment spec; it
// returns the enabled set (nil when the variable is empty/unset).
func FromEnv(env string) (*Set, error) {
	if env == "" {
		return nil, nil
	}
	s, err := Parse(env)
	if err != nil {
		return nil, err
	}
	Enable(s)
	return s, nil
}

// Fire evaluates the enabled fault set at one site hit. It returns a
// non-nil error when an error (or hang cancellation) is injected,
// panics for ModePanic, sleeps for ModeDelay, and returns nil
// otherwise — including always when injection is disabled. ctx may be
// nil (treated as uncancellable; hangs then fire as errors instead of
// blocking forever).
func Fire(ctx context.Context, point, detail string) error {
	s := enabled.Load()
	if s == nil {
		return nil
	}
	for _, r := range s.Rules {
		if !r.matches(point, detail) {
			continue
		}
		if !r.take(detail) {
			continue
		}
		switch r.Mode {
		case ModeError:
			return &Error{Point: point, Detail: detail, Retryable: r.Transient}
		case ModePanic:
			panic(fmt.Sprintf("faultinject: injected panic at %s (%s)", point, detail))
		case ModeDelay:
			sleep(ctx, r.Delay)
		case ModeHang:
			if ctx == nil {
				return &Error{Point: point, Detail: detail, Retryable: r.Transient}
			}
			<-ctx.Done()
			return ctx.Err()
		case ModeExit:
			fmt.Fprintf(os.Stderr, "faultinject: injected exit(%d) at %s (%s)\n", r.ExitCode, point, detail)
			osExit(r.ExitCode)
		case ModeCorrupt:
			return &Error{Point: point, Detail: detail, Retryable: r.Transient, Corrupted: true}
		}
	}
	return nil
}

// osExit is swapped out by tests that must observe ModeExit without
// dying.
var osExit = os.Exit

// matches reports whether the rule applies to this site hit at all.
func (r *Rule) matches(point, detail string) bool {
	if r.Point != "*" && r.Point != point {
		return false
	}
	return r.Match == "" || strings.Contains(detail, r.Match)
}

// take counts a matching hit and decides whether the rule fires on it.
func (r *Rule) take(detail string) bool {
	if r.P > 0 && hashP(r.Seed, detail) >= r.P {
		return false
	}
	hit := r.hits.Add(1)
	if hit <= r.After {
		return false
	}
	if r.Count > 0 && r.fires.Add(1) > r.Count {
		return false
	}
	return true
}

// Fires returns how many times the rule has fired (for tests).
func (r *Rule) Fires() int64 {
	n := r.fires.Load()
	if r.Count > 0 && n > r.Count {
		n = r.Count
	}
	return n
}

// hashP maps (seed, detail) to [0,1) deterministically: the same
// detail fires or not regardless of scheduling or worker count.
func hashP(seed uint64, detail string) float64 {
	h := fnv.New64a()
	var b [8]byte
	for i := range b {
		b[i] = byte(seed >> (8 * i))
	}
	h.Write(b[:])
	h.Write([]byte(detail))
	// FNV alone diffuses a short input's last bytes only into the low
	// bits; finish with a splitmix64-style mix so the top bits vary.
	x := h.Sum64()
	x ^= x >> 30
	x *= 0xbf58476d1ce4e5b9
	x ^= x >> 27
	x *= 0x94d049bb133111eb
	x ^= x >> 31
	return float64(x>>11) / float64(1<<53)
}

// sleep waits for d or until ctx is cancelled.
func sleep(ctx context.Context, d time.Duration) {
	if d <= 0 {
		return
	}
	if ctx == nil {
		time.Sleep(d)
		return
	}
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-t.C:
	case <-ctx.Done():
	}
}
