package faultinject

import (
	"context"
	"errors"
	"strings"
	"testing"
	"time"
)

// withSet installs a parsed spec for the duration of the test.
func withSet(t *testing.T, spec string) *Set {
	t.Helper()
	s, err := Parse(spec)
	if err != nil {
		t.Fatalf("Parse(%q): %v", spec, err)
	}
	Enable(s)
	t.Cleanup(Disable)
	return s
}

func TestParseErrors(t *testing.T) {
	for _, bad := range []string{
		"justapoint",
		"p:wrongmode",
		"p:delay",              // delay needs a duration
		"p:delay=xyz",          // bad duration
		"p:error:after=-1",     // negative after
		"p:error:count=0",      // count must be positive
		"p:error:p=1.5",        // probability out of range
		"p:error:transient=no", // transient takes no value
		"p:error:bogus=1",      // unknown option
		":error",               // empty point
	} {
		if _, err := Parse(bad); err == nil {
			t.Errorf("Parse(%q): expected error", bad)
		}
	}
	if s, err := Parse(" ; ;"); err != nil || len(s.Rules) != 0 {
		t.Errorf("blank spec: %v, %+v", err, s)
	}
}

func TestDisabledIsNoop(t *testing.T) {
	Disable()
	if Active() {
		t.Fatal("Active after Disable")
	}
	if err := Fire(context.Background(), "vm.run", "x"); err != nil {
		t.Fatalf("disabled Fire returned %v", err)
	}
}

func TestErrorMatchAndCount(t *testing.T) {
	withSet(t, "pool.worker=fig3/maxflow:error:count=2")
	hits := 0
	for i := 0; i < 5; i++ {
		if err := Fire(nil, "pool.worker", "fig3/maxflow/N/b16"); err != nil {
			hits++
			var fe *Error
			if !errors.As(err, &fe) || fe.Point != "pool.worker" {
				t.Fatalf("wrong error: %v", err)
			}
			if fe.Transient() {
				t.Error("non-transient rule produced a transient error")
			}
		}
	}
	if hits != 2 {
		t.Errorf("count=2 fired %d times", hits)
	}
	if err := Fire(nil, "pool.worker", "fig3/pverify/N/b16"); err != nil {
		t.Errorf("non-matching detail fired: %v", err)
	}
	if err := Fire(nil, "vm.run", "fig3/maxflow"); err != nil {
		t.Errorf("non-matching point fired: %v", err)
	}
}

func TestAfterSkipsLeadingHits(t *testing.T) {
	withSet(t, "vm.run:error:after=2:count=1")
	var got []int
	for i := 0; i < 5; i++ {
		if Fire(nil, "vm.run", "") != nil {
			got = append(got, i)
		}
	}
	if len(got) != 1 || got[0] != 2 {
		t.Errorf("after=2:count=1 fired at hits %v, want [2]", got)
	}
}

func TestTransientFlag(t *testing.T) {
	withSet(t, "pool.worker:error:transient")
	err := Fire(nil, "pool.worker", "k")
	var fe *Error
	if !errors.As(err, &fe) || !fe.Transient() {
		t.Fatalf("expected transient injected error, got %v", err)
	}
}

func TestPanicMode(t *testing.T) {
	withSet(t, "core.restructure:panic:count=1")
	defer func() {
		p := recover()
		if p == nil {
			t.Fatal("expected panic")
		}
		if !strings.Contains(p.(string), "core.restructure") {
			t.Fatalf("panic value %v", p)
		}
	}()
	Fire(nil, "core.restructure", "")
}

func TestDelayMode(t *testing.T) {
	withSet(t, "pool.worker:delay=30ms:count=1")
	start := time.Now()
	if err := Fire(context.Background(), "pool.worker", "k"); err != nil {
		t.Fatal(err)
	}
	if d := time.Since(start); d < 25*time.Millisecond {
		t.Errorf("delay fired but only slept %v", d)
	}
	// Second hit: count exhausted, no delay.
	start = time.Now()
	Fire(context.Background(), "pool.worker", "k")
	if d := time.Since(start); d > 20*time.Millisecond {
		t.Errorf("exhausted delay rule still slept %v", d)
	}
}

func TestHangRespectsContext(t *testing.T) {
	withSet(t, "vm.run:hang")
	ctx, cancel := context.WithTimeout(context.Background(), 20*time.Millisecond)
	defer cancel()
	start := time.Now()
	err := Fire(ctx, "vm.run", "")
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("hang returned %v", err)
	}
	if time.Since(start) < 15*time.Millisecond {
		t.Error("hang returned before cancellation")
	}
	// nil ctx: must not block forever — degrade to an error.
	if err := Fire(nil, "vm.run", ""); err == nil {
		t.Error("hang with nil ctx must fail, not pass")
	}
}

// TestProbabilityDeterministic: p+seed selects a fixed subset of
// details — the same ones on every pass — and different seeds pick
// different subsets.
func TestProbabilityDeterministic(t *testing.T) {
	withSet(t, "pool.worker:error:p=0.5:seed=7")
	details := []string{"a", "b", "c", "d", "e", "f", "g", "h", "i", "j"}
	pick := func() string {
		var sb strings.Builder
		for _, d := range details {
			if Fire(nil, "pool.worker", d) != nil {
				sb.WriteString(d)
			}
		}
		return sb.String()
	}
	first := pick()
	for i := 0; i < 3; i++ {
		if got := pick(); got != first {
			t.Fatalf("selection changed between passes: %q vs %q", first, got)
		}
	}
	if first == "" || first == strings.Join(details, "") {
		t.Errorf("p=0.5 selected %q of %v — suspicious", first, details)
	}

	withSet(t, "pool.worker:error:p=0.5:seed=8")
	if second := pick(); second == first {
		t.Errorf("seed change kept selection %q", first)
	}
}

func TestWildcardPoint(t *testing.T) {
	withSet(t, "*:error")
	for _, pt := range []string{"pool.worker", "vm.run", "trace.partee"} {
		if Fire(nil, pt, "") == nil {
			t.Errorf("wildcard did not fire at %s", pt)
		}
	}
}

func TestFromEnv(t *testing.T) {
	t.Cleanup(Disable)
	if s, err := FromEnv(""); err != nil || s != nil || Active() {
		t.Fatalf("empty env: %v %v active=%v", s, err, Active())
	}
	s, err := FromEnv("vm.run:error")
	if err != nil || s == nil || !Active() {
		t.Fatalf("FromEnv: %v %v active=%v", s, err, Active())
	}
	if _, err := FromEnv("garbage"); err == nil {
		t.Error("bad env spec must error")
	}
}
