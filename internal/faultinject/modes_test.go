package faultinject

import (
	"context"
	"strings"
	"testing"
)

// The exit and corrupt modes were added for the distributed fabric's
// chaos testing; these tests pin their parse and fire semantics
// without a worker process in the loop.

func TestExitMode(t *testing.T) {
	defer Disable()
	var code = -1
	defer func(orig func(int)) { osExit = orig }(osExit)
	osExit = func(c int) { code = c }

	s, err := Parse("worker.cell=matrix/gen-001:exit")
	if err != nil {
		t.Fatal(err)
	}
	Enable(s)
	Fire(context.Background(), "worker.cell", "matrix/gen-002/mesi/flat")
	if code != -1 {
		t.Fatalf("exit fired on a non-matching cell (code %d)", code)
	}
	Fire(context.Background(), "worker.cell", "matrix/gen-001/mesi/flat")
	if code != 3 {
		t.Fatalf("exit code = %d, want default 3", code)
	}
}

func TestExitModeCustomCode(t *testing.T) {
	defer Disable()
	var code = -1
	defer func(orig func(int)) { osExit = orig }(osExit)
	osExit = func(c int) { code = c }

	s, err := Parse("worker.cell:exit=7:count=1")
	if err != nil {
		t.Fatal(err)
	}
	Enable(s)
	Fire(context.Background(), "worker.cell", "k")
	if code != 7 {
		t.Fatalf("exit code = %d, want 7", code)
	}
	// count=1 exhausted: a second hit must not exit again. (In a real
	// worker the first Fire never returns; the stubbed osExit does.)
	code = -1
	Fire(context.Background(), "worker.cell", "k")
	if code != -1 {
		t.Fatal("exit fired past its count")
	}
}

func TestExitParseErrors(t *testing.T) {
	for _, spec := range []string{
		"worker.cell:exit=abc",
		"worker.cell:exit=-1",
		"worker.cell:exit=256",
	} {
		if _, err := Parse(spec); err == nil {
			t.Errorf("Parse(%q) accepted an invalid exit status", spec)
		}
	}
}

func TestCorruptMode(t *testing.T) {
	defer Disable()
	s, err := Parse("worker.send=matrix/gen-001:corrupt:count=1")
	if err != nil {
		t.Fatal(err)
	}
	Enable(s)
	if err := Fire(context.Background(), "worker.send", "matrix/gen-002/x"); err != nil {
		t.Fatalf("corrupt fired on a non-matching send: %v", err)
	}
	err = Fire(context.Background(), "worker.send", "matrix/gen-001/x")
	if err == nil {
		t.Fatal("corrupt rule did not fire")
	}
	if !IsCorrupt(err) {
		t.Errorf("IsCorrupt(%v) = false, want true", err)
	}
	if !strings.Contains(err.Error(), "worker.send") {
		t.Errorf("error %q does not name the point", err)
	}
	// Exhausted.
	if err := Fire(context.Background(), "worker.send", "matrix/gen-001/x"); err != nil {
		t.Fatalf("corrupt fired past its count: %v", err)
	}
	// A plain injected error is not corrupt.
	if IsCorrupt(&Error{Point: "p"}) {
		t.Error("plain injected error reported as corrupt")
	}
}
