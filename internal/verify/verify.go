// Package verify implements translation validation for the
// restructurer: it runs the original and the transformed program on
// the deterministic VM (at a small process count, under a step
// budget) and compares the final observable shared state through the
// address remapping the applied transformation decisions induce.
//
// The comparison is per object: every shared global of the ORIGINAL
// program gets a Verdict, locating its cells on the transformed side
// via the decision that covers it — identity for pad & align and
// locks (same name, different strides), [i][j]->[j][i] for
// transposes, [e] -> [e%P][e/P] (cyclic) or [e/C][e%C] (block) for
// reshapes, a[e] -> gtv[e].a for grouped vectors, and a pointer
// dereference for indirected heap fields. Heap state is compared one
// level deep through shared pointer globals, using the VM's
// allocation tables for element counts and (padded) strides.
//
// Pointer-valued cells are skipped — addresses legitimately differ
// between layouts. Doubles compare under a small relative tolerance,
// since the transformed program may reach a lock in a different
// deterministic order and reassociate floating-point reductions.
package verify

import (
	"fmt"
	"math"
	"strings"

	"falseshare/internal/lang/ast"
	"falseshare/internal/lang/types"
	"falseshare/internal/layout"
	"falseshare/internal/transform"
	"falseshare/internal/vm"
)

// Side is one program version: a checked file plus its layout.
type Side struct {
	File   *ast.File
	Info   *types.Info
	Layout *layout.Layout
}

// Options configure a validation run.
type Options struct {
	// Nprocs is the process count to execute both sides at. Zero
	// means min(DefaultNprocs, layout nprocs). Running below the
	// layout's configured count is sound: the layout only sizes
	// arrays, and cells no process writes stay zero on both sides.
	Nprocs int
	// StepBudget bounds each side's per-process instruction count.
	// Zero means DefaultStepBudget. An original-side budget overrun
	// makes the run inconclusive (Report.Skipped), not a failure.
	StepBudget int64
	// Tolerance is the relative tolerance for double comparisons.
	// Zero means DefaultTolerance.
	Tolerance float64
}

// Defaults for Options zero values.
const (
	DefaultNprocs     = 4
	DefaultStepBudget = int64(50e6)
	DefaultTolerance  = 1e-6
)

// Divergence pinpoints the first mismatching cell of an object.
type Divergence struct {
	Cell      string // e.g. "hist[3]" or "nodes[2].excess"
	OrigAddr  int64
	TransAddr int64
	Orig      string // rendered original-side value
	Trans     string // rendered transformed-side value
}

func (d *Divergence) String() string {
	return fmt.Sprintf("%s: orig@%#x=%s trans@%#x=%s", d.Cell, d.OrigAddr, d.Orig, d.TransAddr, d.Trans)
}

// Verdict is the comparison result for one original-program object.
type Verdict struct {
	Object  string
	OK      bool
	Cells   int    // scalar cells compared
	Skipped int    // pointer-valued cells not compared
	Reason  string // why the verdict failed (First may add detail)
	First   *Divergence
}

// Report is the outcome of one translation-validation run.
type Report struct {
	// Nprocs and StepBudget echo the effective run parameters.
	Nprocs     int
	StepBudget int64
	// Skipped is set when verification was inconclusive: the ORIGINAL
	// program failed to run (step budget, VM error), so the transform
	// cannot be blamed. SkipReason explains.
	Skipped    bool
	SkipReason string
	// TransErr records a transformed-side compile or run failure —
	// a whole-program divergence not attributable to one object.
	TransErr string
	// OK is true when the run was conclusive and every object passed.
	OK      bool
	Objects []Verdict
}

// Failing returns the objects whose verdicts failed.
func (r *Report) Failing() []Verdict {
	var out []Verdict
	for _, v := range r.Objects {
		if !v.OK {
			out = append(out, v)
		}
	}
	return out
}

// String renders a compact human-readable report.
func (r *Report) String() string {
	var sb strings.Builder
	switch {
	case r.Skipped:
		fmt.Fprintf(&sb, "verify: skipped (%s)\n", r.SkipReason)
		return sb.String()
	case r.TransErr != "":
		fmt.Fprintf(&sb, "verify: FAIL (transformed program: %s)\n", r.TransErr)
	case r.OK:
		fmt.Fprintf(&sb, "verify: ok (%d objects, nprocs=%d)\n", len(r.Objects), r.Nprocs)
	default:
		fmt.Fprintf(&sb, "verify: FAIL (%d/%d objects diverge)\n", len(r.Failing()), len(r.Objects))
	}
	for _, v := range r.Objects {
		mark := "ok"
		if !v.OK {
			mark = "FAIL"
		}
		fmt.Fprintf(&sb, "  %-4s %s (%d cells, %d skipped)", mark, v.Object, v.Cells, v.Skipped)
		if v.Reason != "" {
			fmt.Fprintf(&sb, " — %s", v.Reason)
		}
		if v.First != nil {
			fmt.Fprintf(&sb, " — %s", v.First)
		}
		sb.WriteByte('\n')
	}
	return sb.String()
}

// Run validates a transformation by differential execution. applied
// are the transformation decisions that were actually applied (they
// define the address remapping). The returned error covers misuse
// only; execution failures land in the Report.
func Run(orig, trans Side, applied []*transform.Decision, opts Options) (*Report, error) {
	if orig.File == nil || orig.Info == nil || orig.Layout == nil ||
		trans.File == nil || trans.Info == nil || trans.Layout == nil {
		return nil, fmt.Errorf("verify: both sides need file, info and layout")
	}
	nprocs := opts.Nprocs
	if nprocs <= 0 {
		nprocs = DefaultNprocs
		if ln := int(orig.Layout.Nprocs); ln > 0 && ln < nprocs {
			nprocs = ln
		}
	}
	budget := opts.StepBudget
	if budget <= 0 {
		budget = DefaultStepBudget
	}
	tol := opts.Tolerance
	if tol <= 0 {
		tol = DefaultTolerance
	}
	rep := &Report{Nprocs: nprocs, StepBudget: budget}

	om, err := execute(orig, nprocs, budget)
	if err != nil {
		// The original program itself does not run to completion at
		// this configuration — inconclusive, not the transform's fault.
		rep.Skipped = true
		rep.SkipReason = fmt.Sprintf("original program: %v", err)
		return rep, nil
	}
	tm, err := execute(trans, nprocs, budget)
	if err != nil {
		rep.TransErr = err.Error()
		return rep, nil
	}

	c := &comparer{orig: orig, trans: trans, om: om, tm: tm, tol: tol}
	c.indirected(applied)
	for _, sym := range orig.Info.SharedGlobals() {
		rep.Objects = append(rep.Objects, c.compareObject(sym, applied))
	}
	rep.OK = true
	for _, v := range rep.Objects {
		if !v.OK {
			rep.OK = false
		}
	}
	return rep, nil
}

// execute compiles and runs one side, returning the finished machine.
func execute(s Side, nprocs int, budget int64) (*vm.Machine, error) {
	prog, err := vm.Compile(s.File, s.Info, s.Layout, nprocs)
	if err != nil {
		return nil, fmt.Errorf("compile: %v", err)
	}
	m := vm.New(prog)
	m.MaxInstrs = budget
	if err := m.Run(nil); err != nil {
		return nil, err
	}
	return m, nil
}

// comparer holds the state of one report's memory walk.
type comparer struct {
	orig, trans Side
	om, tm      *vm.Machine
	tol         float64
	// indirect maps "Struct.field" to true for indirected heap fields
	// (scalar on the original side, pointer-to-scalar on the
	// transformed side).
	indirect map[string]bool
}

func (c *comparer) indirected(applied []*transform.Decision) {
	c.indirect = map[string]bool{}
	for _, d := range applied {
		if d.Kind != transform.KindIndirection {
			continue
		}
		for _, f := range d.Fields {
			c.indirect[d.Struct+"."+f] = true
		}
	}
}

// decisionFor finds the applied decision that remaps a global's
// subscripts, if any. Padding-only decisions keep the identity map.
func decisionFor(name string, applied []*transform.Decision) *transform.Decision {
	for _, d := range applied {
		if d.Kind != transform.KindGroupTranspose {
			continue
		}
		switch d.Shape {
		case transform.ShapeGroup, transform.ShapeTranspose,
			transform.ShapeCyclic, transform.ShapeBlock:
			for _, a := range d.Arrays {
				if a == name {
					return d
				}
			}
		}
	}
	return nil
}

// compareObject builds the verdict for one original-side global.
func (c *comparer) compareObject(sym *types.Symbol, applied []*transform.Decision) Verdict {
	v := Verdict{Object: sym.Name, OK: true}
	ovl := c.orig.Layout.Var(sym.Name)
	if ovl == nil {
		v.OK, v.Reason = false, "no original layout"
		return v
	}

	if sym.Type.Kind == types.Pointer {
		c.compareHeap(&v, sym, ovl)
		return v
	}

	d := decisionFor(sym.Name, applied)
	var tvl *layout.VarLayout
	if d != nil && d.Shape == transform.ShapeGroup && len(d.HeapVia) == 0 {
		tvl = c.trans.Layout.Var(d.GroupVar)
	} else {
		if d != nil && (d.Shape == transform.ShapeGroup) {
			d = nil // heap-side grouping pads only; identity map
		}
		tvl = c.trans.Layout.Var(sym.Name)
	}
	if tvl == nil {
		v.OK, v.Reason = false, "object missing from transformed layout"
		return v
	}

	elem := types.ElemType(sym.Type)
	dims := ovl.Dims
	idx := make([]int64, len(dims))
	var walk func(k int) bool
	walk = func(k int) bool {
		if k == len(dims) {
			oaddr := ovl.Address(idx)
			taddr, err := c.transAddr(tvl, d, sym.Name, idx)
			if err != nil {
				v.OK, v.Reason = false, err.Error()
				return false
			}
			name := cellName(sym.Name, idx)
			if elem.Kind == types.StructK {
				return c.compareStruct(&v, elem.Struct.Name, name, oaddr, taddr, false)
			}
			if elem.Kind == types.Pointer {
				return c.comparePtrCell(&v, elem, name, oaddr, taddr)
			}
			return c.compareScalar(&v, elem, name, oaddr, taddr, false)
		}
		for idx[k] = 0; idx[k] < dims[k]; idx[k]++ {
			if !walk(k + 1) {
				return false
			}
		}
		return true
	}
	walk(0)
	return v
}

// transAddr maps an original-side element index to the transformed
// address, per the covering decision. origName selects the record
// field for grouped vectors (gtv[e].origName).
func (c *comparer) transAddr(tvl *layout.VarLayout, d *transform.Decision, origName string, idx []int64) (int64, error) {
	if d == nil {
		return tvl.Address(idx), nil
	}
	switch d.Shape {
	case transform.ShapeTranspose:
		if len(idx) != 2 {
			return 0, fmt.Errorf("transpose of rank-%d index", len(idx))
		}
		return tvl.Address([]int64{idx[1], idx[0]}), nil
	case transform.ShapeCyclic:
		if len(idx) != 1 || d.Period <= 0 {
			return 0, fmt.Errorf("bad cyclic reshape map")
		}
		return tvl.Address([]int64{idx[0] % d.Period, idx[0] / d.Period}), nil
	case transform.ShapeBlock:
		if len(idx) != 1 || d.Period <= 0 {
			return 0, fmt.Errorf("bad block reshape map")
		}
		return tvl.Address([]int64{idx[0] / d.Period, idx[0] % d.Period}), nil
	case transform.ShapeGroup:
		if len(idx) != 1 {
			return 0, fmt.Errorf("group of rank-%d index", len(idx))
		}
		// gtv[e].origName — grouped vectors have scalar elements, so
		// the record field named after the vector holds the cell.
		sl := c.trans.Layout.Struct(d.GroupStruct)
		si := c.trans.Info.Structs[d.GroupStruct]
		if sl == nil || si == nil {
			return 0, fmt.Errorf("group struct %q missing", d.GroupStruct)
		}
		f := si.Field(origName)
		if f == nil {
			return 0, fmt.Errorf("group field %q missing", origName)
		}
		return tvl.Address(idx) + sl.Offsets[f.Index], nil
	}
	return tvl.Address(idx), nil
}

// compareStruct walks a struct instance cell by cell. base addresses
// are the instance starts on each side; heap selects indirection
// handling (indirected fields exist on heap structs only). Returns
// false to stop the object walk after the first divergence.
func (c *comparer) compareStruct(v *Verdict, structName, name string, obase, tbase int64, heap bool) bool {
	osi := c.orig.Info.Structs[structName]
	tsi := c.trans.Info.Structs[structName]
	osl := c.orig.Layout.Struct(structName)
	tsl := c.trans.Layout.Struct(structName)
	if osi == nil || tsi == nil || osl == nil || tsl == nil {
		v.OK, v.Reason = false, fmt.Sprintf("struct %q missing on one side", structName)
		return false
	}
	for _, of := range osi.Fields {
		tf := tsi.Field(of.Name)
		if tf == nil {
			v.OK, v.Reason = false, fmt.Sprintf("field %s.%s missing on transformed side", structName, of.Name)
			return false
		}
		oaddr := obase + osl.Offsets[of.Index]
		taddr := tbase + tsl.Offsets[tf.Index]
		fname := name + "." + of.Name
		indirect := heap && c.indirect[structName+"."+of.Name]
		switch {
		case of.Type.Kind == types.StructK:
			if !c.compareStruct(v, of.Type.Struct.Name, fname, oaddr, taddr, heap) {
				return false
			}
		case of.Type.Kind == types.Array:
			if !c.compareFieldArray(v, of.Type, fname, oaddr, taddr, heap) {
				return false
			}
		default:
			if !c.compareScalar2(v, of.Type, fname, oaddr, taddr, indirect) {
				return false
			}
		}
	}
	return true
}

// compareFieldArray walks an array-typed struct field (contiguous on
// both sides; strides are the element sizes).
func (c *comparer) compareFieldArray(v *Verdict, t *types.Type, name string, obase, tbase int64, heap bool) bool {
	dims, ok := types.ArrayDims(t, c.orig.Layout.Nprocs)
	if !ok {
		v.OK, v.Reason = false, fmt.Sprintf("%s: non-constant field extent", name)
		return false
	}
	elem := types.ElemType(t)
	osz, err1 := c.orig.Layout.SizeOf(elem)
	tsz, err2 := c.trans.Layout.SizeOf(elem)
	if err1 != nil || err2 != nil {
		v.OK, v.Reason = false, fmt.Sprintf("%s: unsizable element", name)
		return false
	}
	n := int64(1)
	for _, d := range dims {
		n *= d
	}
	for i := int64(0); i < n; i++ {
		fname := fmt.Sprintf("%s[%d]", name, i)
		oaddr := obase + i*osz
		taddr := tbase + i*tsz
		if elem.Kind == types.StructK {
			if !c.compareStruct(v, elem.Struct.Name, fname, oaddr, taddr, heap) {
				return false
			}
		} else if !c.compareScalar(v, elem, fname, oaddr, taddr, false) {
			return false
		}
	}
	return true
}

// comparePtrCell follows one pointer-valued array cell (e.g.
// heads[3]) into the instance it refers to and compares that struct
// one level deep. Non-struct pointees and pointers the VM cannot
// bound-check are skipped — the addresses themselves legitimately
// differ between the two layouts.
func (c *comparer) comparePtrCell(v *Verdict, t *types.Type, name string, oaddr, taddr int64) bool {
	optr := c.om.ReadPtr(oaddr)
	tptr := c.tm.ReadPtr(taddr)
	if optr == 0 && tptr == 0 {
		v.Skipped++
		return true
	}
	if (optr == 0) != (tptr == 0) {
		v.OK = false
		v.First = &Divergence{
			Cell: name, OrigAddr: oaddr, TransAddr: taddr,
			Orig: fmt.Sprintf("%#x", optr), Trans: fmt.Sprintf("%#x", tptr),
		}
		v.Reason = "allocation present on one side only"
		return false
	}
	pointee := t.Elem
	if pointee == nil || pointee.Kind != types.StructK ||
		!inBounds(c.om, optr) || !inBounds(c.tm, tptr) {
		v.Skipped++
		return true
	}
	return c.compareStruct(v, pointee.Struct.Name, name+"->", optr, tptr, true)
}

// inBounds reports whether addr is a readable machine address; a
// corrupted transformation could leave garbage in a pointer cell, and
// the oracle must report that, not fault on it.
func inBounds(m *vm.Machine, addr int64) bool {
	return addr > 0 && addr < int64(len(m.Mem()))
}

// compareHeap compares the allocation a shared pointer global refers
// to, one level deep.
func (c *comparer) compareHeap(v *Verdict, sym *types.Symbol, ovl *layout.VarLayout) {
	tvl := c.trans.Layout.Var(sym.Name)
	if tvl == nil {
		v.OK, v.Reason = false, "pointer global missing from transformed layout"
		return
	}
	optr := c.om.ReadPtr(ovl.Base)
	tptr := c.tm.ReadPtr(tvl.Base)
	if optr == 0 && tptr == 0 {
		v.Skipped++
		return
	}
	if (optr == 0) != (tptr == 0) {
		v.OK = false
		v.First = &Divergence{
			Cell: sym.Name, OrigAddr: ovl.Base, TransAddr: tvl.Base,
			Orig: fmt.Sprintf("%#x", optr), Trans: fmt.Sprintf("%#x", tptr),
		}
		v.Reason = "allocation present on one side only"
		return
	}
	ostart, oend, ostride, ook := c.om.AllocSpan(optr)
	tstart, tend, tstride, tok := c.tm.AllocSpan(tptr)
	if !ook || !tok {
		// Pointer into another global or arena — not a heap array we
		// can enumerate; skip (addresses differ legitimately).
		v.Skipped++
		return
	}
	on := (oend - ostart) / ostride
	tn := (tend - tstart) / tstride
	if on != tn {
		v.OK = false
		v.Reason = fmt.Sprintf("allocation has %d elements vs %d", on, tn)
		return
	}
	elem := sym.Type.Elem
	for i := int64(0); i < on; i++ {
		name := fmt.Sprintf("%s[%d]", sym.Name, i)
		oaddr := optr + i*ostride
		taddr := tptr + i*tstride
		if elem.Kind == types.StructK {
			if !c.compareStruct(v, elem.Struct.Name, name, oaddr, taddr, true) {
				return
			}
		} else if !c.compareScalar(v, elem, name, oaddr, taddr, false) {
			return
		}
	}
}

// compareScalar compares one non-indirected scalar cell.
func (c *comparer) compareScalar(v *Verdict, t *types.Type, name string, oaddr, taddr int64, indirect bool) bool {
	return c.compareScalar2(v, t, name, oaddr, taddr, indirect)
}

// compareScalar2 compares one scalar cell; when indirect is set the
// transformed side holds a pointer to the value (indirection) and is
// dereferenced first.
func (c *comparer) compareScalar2(v *Verdict, t *types.Type, name string, oaddr, taddr int64, indirect bool) bool {
	if t.Kind == types.Pointer {
		v.Skipped++
		return true
	}
	if indirect {
		p := c.tm.ReadPtr(taddr)
		if p == 0 {
			v.OK = false
			v.First = &Divergence{Cell: name, OrigAddr: oaddr, TransAddr: taddr,
				Orig: c.render(c.om, t, oaddr), Trans: "nil indirection"}
			return false
		}
		taddr = p
	}
	v.Cells++
	equal := false
	switch t.Kind {
	case types.Double:
		a, b := c.om.ReadDouble(oaddr), c.tm.ReadDouble(taddr)
		equal = a == b || math.Abs(a-b) <= c.tol*math.Max(math.Abs(a), math.Abs(b))
	default: // Int, LockT
		equal = c.om.ReadInt(oaddr) == c.tm.ReadInt(taddr)
	}
	if equal {
		return true
	}
	v.OK = false
	v.First = &Divergence{
		Cell: name, OrigAddr: oaddr, TransAddr: taddr,
		Orig: c.render(c.om, t, oaddr), Trans: c.render(c.tm, t, taddr),
	}
	return false
}

func (c *comparer) render(m *vm.Machine, t *types.Type, addr int64) string {
	if t.Kind == types.Double {
		return fmt.Sprintf("%g", m.ReadDouble(addr))
	}
	return fmt.Sprintf("%d", m.ReadInt(addr))
}

func cellName(base string, idx []int64) string {
	var sb strings.Builder
	sb.WriteString(base)
	for _, i := range idx {
		fmt.Fprintf(&sb, "[%d]", i)
	}
	return sb.String()
}
