// Tests live in verify_test because constructing Sides goes through
// core.Restructure, and core imports verify.
package verify_test

import (
	"strings"
	"testing"

	"falseshare/internal/core"
	"falseshare/internal/transform"
	"falseshare/internal/verify"
)

func side(p *core.Program) verify.Side {
	return verify.Side{File: p.File, Info: p.Info, Layout: p.Layout}
}

func restructure(t *testing.T, src string, nprocs int) *core.Result {
	t.Helper()
	res, err := core.Restructure(src, core.Options{
		Nprocs:     nprocs,
		BlockSize:  64,
		Heuristics: transform.Config{FreqThreshold: 2},
	})
	if err != nil {
		t.Fatalf("Restructure: %v", err)
	}
	return res
}

// parseOnly builds a Side for a program without transforming it, so
// tests can hand-craft "transformed" sides that genuinely diverge.
func parseOnly(t *testing.T, src string, nprocs int) verify.Side {
	t.Helper()
	prog, err := core.Compile(src, core.Options{Nprocs: nprocs, BlockSize: 64})
	if err != nil {
		t.Fatalf("Compile: %v", err)
	}
	return side(prog)
}

// TestVerifyShapes runs the oracle over one program per remapping
// shape and checks it accepts the (correct) transformation while
// actually comparing cells through the remap.
func TestVerifyShapes(t *testing.T) {
	cases := []struct {
		name string
		src  string
		want transform.GTShape
	}{
		{"group", `
shared int cell[16];
shared int hits[16];
void main() {
    for (int i = 0; i < 1000; i = i + 1) {
        cell[pid] = cell[pid] + 1;
        hits[pid] = hits[pid] + 2;
    }
}
`, transform.ShapeGroup},
		{"transpose", `
shared double w[50][8];
void main() {
    for (int i = 0; i < 50; i = i + 1) {
        w[i][pid] = w[i][pid] + 1.0;
    }
}
`, transform.ShapeTranspose},
		{"cyclic", `
shared int a[64];
void main() {
    for (int r = 0; r < 100; r = r + 1) {
        for (int i = pid; i < 64; i = i + nprocs) {
            a[i] = a[i] + 1;
        }
    }
}
`, transform.ShapeCyclic},
		{"block", `
shared int a[96];
void main() {
    int chunk;
    int lo;
    chunk = 96 / nprocs;
    lo = pid * chunk;
    for (int r = 0; r < 100; r = r + 1) {
        for (int i = lo; i < lo + chunk; i = i + 1) {
            a[i] = a[i] + 1;
        }
    }
}
`, transform.ShapeBlock},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			res := restructure(t, tc.src, 8)
			gt := res.Plan.ByKind(transform.KindGroupTranspose)
			if len(gt) != 1 || gt[0].Shape != tc.want {
				t.Fatalf("plan did not produce shape %v:\n%s", tc.want, res.Plan)
			}
			rep, err := verify.Run(side(res.Original), side(res.Transformed), res.Applied, verify.Options{})
			if err != nil {
				t.Fatalf("verify.Run: %v", err)
			}
			if rep.Skipped || !rep.OK {
				t.Fatalf("verdict not OK:\n%s", rep)
			}
			cells := 0
			for _, v := range rep.Objects {
				cells += v.Cells
			}
			if cells == 0 {
				t.Fatalf("no cells compared:\n%s", rep)
			}
		})
	}
}

// TestVerifyIndirection checks the oracle follows heap pointers and
// the extra indirection the transformation introduces, skipping
// pointer-valued cells rather than comparing raw addresses.
func TestVerifyIndirection(t *testing.T) {
	src := `
struct Node {
    int count;
    struct Node *next;
};
shared struct Node *heads[16];
void main() {
    struct Node *n;
    n = alloc(struct Node);
    n->next = 0;
    heads[pid] = n;
    barrier;
    for (int i = 0; i < 1000; i = i + 1) {
        struct Node *p;
        p = heads[pid];
        while (p != 0) {
            p->count = p->count + 1;
            p = p->next;
        }
    }
}
`
	res := restructure(t, src, 8)
	if len(res.Plan.ByKind(transform.KindIndirection)) != 1 {
		t.Fatalf("expected indirection:\n%s", res.Plan)
	}
	rep, err := verify.Run(side(res.Original), side(res.Transformed), res.Applied, verify.Options{})
	if err != nil {
		t.Fatalf("verify.Run: %v", err)
	}
	if rep.Skipped || !rep.OK {
		t.Fatalf("verdict not OK:\n%s", rep)
	}
	var cells, skipped int
	for _, v := range rep.Objects {
		cells += v.Cells
		skipped += v.Skipped
	}
	if cells == 0 {
		t.Fatalf("no heap cells compared:\n%s", rep)
	}
	if skipped == 0 {
		t.Fatalf("pointer cells (next) should be skipped, not compared:\n%s", rep)
	}
}

// TestVerifyDetectsDivergence feeds the oracle two programs that
// really compute different values; with no decisions applied the
// identity remap must expose the difference.
func TestVerifyDetectsDivergence(t *testing.T) {
	const template = `
shared int out[8];
void main() {
    out[pid] = VALUE;
}
`
	orig := parseOnly(t, strings.Replace(template, "VALUE", "1", 1), 8)
	trans := parseOnly(t, strings.Replace(template, "VALUE", "2", 1), 8)
	rep, err := verify.Run(orig, trans, nil, verify.Options{})
	if err != nil {
		t.Fatalf("verify.Run: %v", err)
	}
	if rep.OK || rep.Skipped {
		t.Fatalf("divergence not detected:\n%s", rep)
	}
	fail := rep.Failing()
	if len(fail) != 1 || fail[0].Object != "out" {
		t.Fatalf("wrong failing object: %+v", fail)
	}
	if fail[0].First == nil || !strings.HasPrefix(fail[0].First.Cell, "out[") {
		t.Fatalf("missing divergence cell: %+v", fail[0])
	}
}

// TestVerifyTolerance: double cells compare with a relative
// tolerance (lock order can reassociate FP reductions), so a tiny
// relative difference passes and a gross one fails.
func TestVerifyTolerance(t *testing.T) {
	const template = `
shared double x;
void main() {
    if (pid == 0) {
        x = VALUE;
    }
}
`
	orig := parseOnly(t, strings.Replace(template, "VALUE", "1000000.0", 1), 2)

	near := parseOnly(t, strings.Replace(template, "VALUE", "1000000.0000001", 1), 2)
	rep, err := verify.Run(orig, near, nil, verify.Options{})
	if err != nil {
		t.Fatalf("verify.Run: %v", err)
	}
	if !rep.OK {
		t.Fatalf("within-tolerance difference rejected:\n%s", rep)
	}

	far := parseOnly(t, strings.Replace(template, "VALUE", "1000100.0", 1), 2)
	rep, err = verify.Run(orig, far, nil, verify.Options{})
	if err != nil {
		t.Fatalf("verify.Run: %v", err)
	}
	if rep.OK {
		t.Fatalf("out-of-tolerance difference accepted:\n%s", rep)
	}
}

// TestVerifyStepBudget: an original-side run that exhausts the step
// budget makes the report inconclusive (Skipped), not a failure —
// a slow program is not the transformation's fault.
func TestVerifyStepBudget(t *testing.T) {
	src := `
shared int n;
void main() {
    for (int i = 0; i < 100000; i = i + 1) {
        n = n + 1;
    }
}
`
	s := parseOnly(t, src, 2)
	rep, err := verify.Run(s, s, nil, verify.Options{StepBudget: 100})
	if err != nil {
		t.Fatalf("verify.Run: %v", err)
	}
	if !rep.Skipped {
		t.Fatalf("expected inconclusive report:\n%s", rep)
	}
	if !strings.Contains(rep.SkipReason, "budget") {
		t.Fatalf("skip reason %q does not mention the budget", rep.SkipReason)
	}
	if rep.OK {
		t.Fatalf("skipped report must not claim OK:\n%s", rep)
	}
}
