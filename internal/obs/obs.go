// Package obs is the pipeline observability layer: hierarchical timed
// spans with typed counters, a process-wide recorder, and JSON/CSV run
// reports. The compiler pipeline, the VM, and the simulators record
// into the installed recorder; the CLIs export the result as a run
// manifest (-report) and stream progress to stderr (-v).
//
// Instrumentation is zero-cost when no recorder is installed: Begin
// performs one atomic load and returns a nil *Span, whose methods are
// all nil-safe no-ops.
package obs

import (
	"context"
	"errors"
	"fmt"
	"io"
	"os"
	"runtime"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"
)

// Span is one timed region of work. Spans nest: Begin while another
// span is open attaches the new span as its child.
type Span struct {
	Name     string
	Started  time.Time
	Wall     time.Duration
	Counters map[string]int64
	Children []*Span

	rec      *Recorder
	depth    int
	open     bool
	detached bool
}

// Recorder accumulates a tree of spans for one run. All methods are
// safe for concurrent use; spans from concurrent goroutines nest under
// whichever span is innermost at the time, so a sequential pipeline
// yields the natural stage tree.
type Recorder struct {
	// Verbose streams span completions (and Logf output) to LogW.
	Verbose bool
	// LogW is the progress stream (default os.Stderr).
	LogW io.Writer
	// OnMetrics, when set, receives streaming metrics snapshots
	// (EmitMetrics) instead of the default verbose log line. Set it
	// before sharing the recorder; EmitMetrics may run on any
	// goroutine.
	OnMetrics MetricsSink

	mu      sync.Mutex
	root    *Span
	stack   []*Span
	started time.Time
}

// NewRecorder returns an empty recorder.
func NewRecorder() *Recorder {
	now := time.Now()
	root := &Span{Name: "run", Started: now, open: true}
	r := &Recorder{root: root, stack: []*Span{root}, started: now}
	root.rec = r
	return r
}

// installed is the process-wide recorder (nil when observability is
// off).
var installed atomic.Pointer[Recorder]

// Install makes r the process-wide recorder (nil uninstalls).
func Install(r *Recorder) { installed.Store(r) }

// Default returns the process-wide recorder, or nil. It ignores
// goroutine bindings; use Current for the recorder Begin would pick.
func Default() *Recorder { return installed.Load() }

// bound maps goroutine IDs to recorders. A worker that binds its own
// recorder (BindGoroutine) routes every Begin/Logf on that goroutine
// into it instead of the process-wide one — this is how the experiment
// pool keeps concurrent jobs' span trees from interleaving on the
// shared recorder stack.
var bound sync.Map // int64 -> *Recorder

// goid returns the current goroutine's ID, parsed from the runtime
// stack header ("goroutine N [running]:"). This costs ~1µs — fine for
// span creation, which happens per pipeline stage, not per reference.
func goid() int64 {
	var buf [64]byte
	n := runtime.Stack(buf[:], false)
	var id int64
	for _, c := range buf[len("goroutine "):n] {
		if c < '0' || c > '9' {
			break
		}
		id = id*10 + int64(c-'0')
	}
	return id
}

// BindGoroutine routes this goroutine's Begin/Logf/Current calls to r
// (nil removes the binding) and returns the previously bound recorder
// so callers can nest bindings save/restore style. Other goroutines
// are unaffected: they keep using the installed recorder.
func BindGoroutine(r *Recorder) *Recorder {
	id := goid()
	var prev *Recorder
	if v, ok := bound.Load(id); ok {
		prev = v.(*Recorder)
	}
	if r == nil {
		bound.Delete(id)
	} else {
		bound.Store(id, r)
	}
	return prev
}

// Current returns the recorder Begin would record into from this
// goroutine: the goroutine-bound recorder when one is set, else the
// process-wide one, else nil.
func Current() *Recorder {
	if v, ok := bound.Load(goid()); ok {
		return v.(*Recorder)
	}
	return installed.Load()
}

// Begin opens a span on the current recorder; it returns nil (a no-op
// span) when no recorder is installed or bound.
func Begin(name string) *Span {
	if r := Current(); r != nil {
		return r.Begin(name)
	}
	return nil
}

// Logf writes a progress line to the current recorder's log when it
// is installed and verbose.
func Logf(format string, args ...any) {
	if r := Current(); r != nil {
		r.Logf(format, args...)
	}
}

// Begin opens a span nested under the innermost open span.
func (r *Recorder) Begin(name string) *Span {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	parent := r.stack[len(r.stack)-1]
	s := &Span{Name: name, Started: time.Now(), rec: r, depth: len(r.stack), open: true}
	parent.Children = append(parent.Children, s)
	r.stack = append(r.stack, s)
	return s
}

// Logf writes one progress line to LogW when the recorder is verbose.
func (r *Recorder) Logf(format string, args ...any) {
	if r == nil || !r.Verbose {
		return
	}
	fmt.Fprintf(r.logw(), "obs: "+format+"\n", args...)
}

func (r *Recorder) logw() io.Writer {
	if r.LogW != nil {
		return r.LogW
	}
	return os.Stderr
}

// End closes the span, recording its wall time. Any child spans still
// open are closed with it. nil-safe.
func (s *Span) End() {
	if s == nil || s.rec == nil {
		return
	}
	r := s.rec
	r.mu.Lock()
	if !s.open {
		r.mu.Unlock()
		return
	}
	if s.detached {
		// Detached spans live outside the recorder stack (they belong
		// to a concurrent worker); just close them in place.
		s.open = false
		if s.Wall == 0 {
			s.Wall = time.Since(s.Started)
		}
		verbose := r.Verbose
		r.mu.Unlock()
		if verbose {
			fmt.Fprintf(r.logw(), "obs: %s%-18s %10s%s\n",
				strings.Repeat("  ", s.depth-1), s.Name, s.Wall.Round(time.Microsecond), s.counterSuffix())
		}
		return
	}
	now := time.Now()
	// Pop the stack down to and including this span.
	for i := len(r.stack) - 1; i >= 1; i-- {
		top := r.stack[i]
		top.open = false
		if top.Wall == 0 {
			top.Wall = now.Sub(top.Started)
		}
		r.stack = r.stack[:i]
		if top == s {
			break
		}
	}
	verbose := r.Verbose
	r.mu.Unlock()
	if verbose {
		fmt.Fprintf(r.logw(), "obs: %s%-18s %10s%s\n",
			strings.Repeat("  ", s.depth-1), s.Name, s.Wall.Round(time.Microsecond), s.counterSuffix())
	}
}

func (s *Span) counterSuffix() string {
	if len(s.Counters) == 0 {
		return ""
	}
	keys := make([]string, 0, len(s.Counters))
	for k := range s.Counters {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	var sb strings.Builder
	for _, k := range keys {
		fmt.Fprintf(&sb, " %s=%d", k, s.Counters[k])
	}
	return sb.String()
}

// Child opens a span attached directly under s, bypassing the
// recorder's stack: concurrent workers each get their own child so
// their spans never interleave with (or capture) each other's.
// Children attach in call order, so creating them before fan-out
// yields a deterministic tree regardless of completion order.
// nil-safe; Child of a snapshot span returns nil.
func (s *Span) Child(name string) *Span {
	if s == nil || s.rec == nil {
		return nil
	}
	r := s.rec
	r.mu.Lock()
	defer r.mu.Unlock()
	c := &Span{Name: name, Started: time.Now(), rec: r, depth: s.depth + 1, open: true, detached: true}
	s.Children = append(s.Children, c)
	return c
}

// Adopt attaches snapshot spans (e.g. another recorder's Spans())
// under s. The experiment pool uses it to graft each job's privately
// recorded tree into the parent run's manifest. nil-safe.
func (s *Span) Adopt(children []*Span) {
	if s == nil || len(children) == 0 {
		return
	}
	if r := s.rec; r != nil {
		r.mu.Lock()
		defer r.mu.Unlock()
	}
	s.Children = append(s.Children, children...)
}

// Fail annotates the span with a failure class counter: "cancelled"
// for context cancellation, "timeout" for a deadline, "error" for
// anything else. The experiment pool stamps job spans this way so
// manifests show which cells failed and how. nil-safe; nil err is a
// no-op.
func (s *Span) Fail(err error) {
	if s == nil || err == nil {
		return
	}
	switch {
	case errors.Is(err, context.Canceled):
		s.Set("cancelled", 1)
	case errors.Is(err, context.DeadlineExceeded):
		s.Set("timeout", 1)
	default:
		s.Set("error", 1)
	}
}

// SetWall overrides the span's wall time (the pool stamps each job
// span with the job's run time, excluding queue wait). nil-safe.
func (s *Span) SetWall(d time.Duration) {
	if s == nil {
		return
	}
	if r := s.rec; r != nil {
		r.mu.Lock()
		defer r.mu.Unlock()
	}
	s.Wall = d
}

// Count adds delta to a named counter. nil-safe.
func (s *Span) Count(name string, delta int64) {
	if s == nil {
		return
	}
	if r := s.rec; r != nil {
		r.mu.Lock()
		defer r.mu.Unlock()
	}
	if s.Counters == nil {
		s.Counters = map[string]int64{}
	}
	s.Counters[name] += delta
}

// Set stores a counter value, replacing any previous one. nil-safe.
func (s *Span) Set(name string, v int64) {
	if s == nil {
		return
	}
	if r := s.rec; r != nil {
		r.mu.Lock()
		defer r.mu.Unlock()
	}
	if s.Counters == nil {
		s.Counters = map[string]int64{}
	}
	s.Counters[name] = v
}

// Counter returns the value of a named counter (0 when absent).
// nil-safe; works on both live and snapshot spans.
func (s *Span) Counter(name string) int64 {
	if s == nil {
		return 0
	}
	if r := s.rec; r != nil {
		r.mu.Lock()
		defer r.mu.Unlock()
	}
	return s.Counters[name]
}

// Find returns the first descendant span (depth-first) with the given
// name, or nil. nil-safe; intended for tests and report assembly.
func (s *Span) Find(name string) *Span {
	if s == nil {
		return nil
	}
	for _, c := range s.Children {
		if c.Name == name {
			return c
		}
		if f := c.Find(name); f != nil {
			return f
		}
	}
	return nil
}

// Adopt attaches snapshot spans at the recorder's top level. The
// experiment journal uses it to restore a cached job's recorded span
// subtree, so a resumed run's manifest matches the uninterrupted one.
// nil-safe.
func (r *Recorder) Adopt(spans []*Span) {
	if r == nil || len(spans) == 0 {
		return
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	r.root.Children = append(r.root.Children, spans...)
}

// Find returns the first span named name in a snapshot of the
// recorder's tree (depth-first, in start order), or nil. The result
// is a snapshot: open spans carry their wall time as of the call.
// nil-safe.
func (r *Recorder) Find(name string) *Span {
	for _, s := range r.Spans() {
		if s.Name == name {
			return s
		}
		if f := s.Find(name); f != nil {
			return f
		}
	}
	return nil
}

// Spans returns a snapshot of the recorder's top-level spans. Spans
// still open are given their wall time as of the snapshot.
func (r *Recorder) Spans() []*Span {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	now := time.Now()
	return snapshotSpans(r.root.Children, now)
}

func snapshotSpans(in []*Span, now time.Time) []*Span {
	out := make([]*Span, len(in))
	for i, s := range in {
		c := &Span{Name: s.Name, Started: s.Started, Wall: s.Wall}
		if s.open && c.Wall == 0 {
			c.Wall = now.Sub(s.Started)
		}
		if len(s.Counters) > 0 {
			c.Counters = make(map[string]int64, len(s.Counters))
			for k, v := range s.Counters {
				c.Counters[k] = v
			}
		}
		c.Children = snapshotSpans(s.Children, now)
		out[i] = c
	}
	return out
}
