package obs

import (
	"sync"
	"testing"
	"time"
)

// TestParallelGoroutineBinding: a goroutine-bound recorder captures
// that goroutine's spans; other goroutines keep hitting the installed
// recorder; unbinding restores the previous routing.
func TestParallelGoroutineBinding(t *testing.T) {
	global := NewRecorder()
	Install(global)
	defer Install(nil)

	var wg sync.WaitGroup
	recs := make([]*Recorder, 4)
	for i := 0; i < 4; i++ {
		i := i
		wg.Add(1)
		go func() {
			defer wg.Done()
			rec := NewRecorder()
			recs[i] = rec
			prev := BindGoroutine(rec)
			if prev != nil {
				t.Errorf("worker %d: unexpected previous binding", i)
			}
			if Current() != rec {
				t.Errorf("worker %d: Current() is not the bound recorder", i)
			}
			sp := Begin("work")
			sp.Set("worker", int64(i))
			sp.End()
			BindGoroutine(prev)
			if Current() != global {
				t.Errorf("worker %d: unbinding did not restore the installed recorder", i)
			}
		}()
	}
	wg.Wait()

	if n := len(global.Spans()); n != 0 {
		t.Errorf("installed recorder captured %d worker spans, want 0", n)
	}
	for i, rec := range recs {
		spans := rec.Spans()
		if len(spans) != 1 || spans[0].Name != "work" || spans[0].Counters["worker"] != int64(i) {
			t.Errorf("worker %d recorder: %+v", i, spans)
		}
	}
}

// TestParallelBindingNesting: bindings save/restore like a stack.
func TestParallelBindingNesting(t *testing.T) {
	defer Install(nil)
	Install(nil)
	outer, inner := NewRecorder(), NewRecorder()

	prev0 := BindGoroutine(outer)
	if prev0 != nil || Current() != outer {
		t.Fatal("first bind")
	}
	prev1 := BindGoroutine(inner)
	if prev1 != outer || Current() != inner {
		t.Fatal("nested bind must return the outer recorder")
	}
	BindGoroutine(prev1)
	if Current() != outer {
		t.Fatal("restore to outer")
	}
	BindGoroutine(prev0)
	if Current() != nil {
		t.Fatal("restore to unbound")
	}
}

// TestDetachedChildSpans: Child attaches under its parent outside the
// recorder stack, so concurrent children never capture each other —
// and attachment order is creation order, not completion order.
func TestDetachedChildSpans(t *testing.T) {
	rec := NewRecorder()
	parent := rec.Begin("stage")
	a := parent.Child("a")
	b := parent.Child("b")

	var wg sync.WaitGroup
	for _, c := range []*Span{b, a} { // end in reverse order
		c := c
		wg.Add(1)
		go func() {
			defer wg.Done()
			c.Count("hits", 2)
			c.End()
		}()
	}
	wg.Wait()

	// A detached End must not pop the recorder stack: "stage" is still
	// the innermost open span.
	nested := rec.Begin("nested")
	nested.End()
	parent.End()

	spans := rec.Spans()
	if len(spans) != 1 || spans[0].Name != "stage" {
		t.Fatalf("top: %+v", spans)
	}
	kids := spans[0].Children
	if len(kids) != 3 || kids[0].Name != "a" || kids[1].Name != "b" || kids[2].Name != "nested" {
		t.Fatalf("children out of order: %+v", kids)
	}
	if kids[0].Counters["hits"] != 2 || kids[1].Counters["hits"] != 2 {
		t.Errorf("counters: %+v", kids)
	}
}

// TestAdoptAndSetWall: grafting snapshot spans and stamping wall
// times, the pool's manifest mechanics.
func TestAdoptAndSetWall(t *testing.T) {
	job := NewRecorder()
	s := job.Begin("inner")
	s.End()

	main := NewRecorder()
	slot := main.Begin("stage").Child("job:k")
	slot.Adopt(job.Spans())
	slot.SetWall(123 * time.Millisecond)
	slot.End()

	spans := main.Spans()
	jobSpan := spans[0].Children[0]
	if jobSpan.Wall != 123*time.Millisecond {
		t.Errorf("SetWall overridden: %v", jobSpan.Wall)
	}
	if len(jobSpan.Children) != 1 || jobSpan.Children[0].Name != "inner" {
		t.Errorf("adopted tree: %+v", jobSpan.Children)
	}

	// All nil-safe.
	var nilSpan *Span
	nilSpan.Adopt(job.Spans())
	nilSpan.SetWall(time.Second)
	if nilSpan.Child("x") != nil {
		t.Error("Child of nil span must be nil")
	}
}
