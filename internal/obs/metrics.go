// Streaming metrics: periodic counter snapshots from long-running
// work (the cache simulators' SetSampler hooks, sweep loops), so a
// multi-minute experiment emits live progress lines instead of going
// dark between span completions. Spans measure completed work;
// metrics stream work in flight.
package obs

import (
	"fmt"
	"sort"
	"strings"
)

// MetricsSink receives one snapshot: a source label ("sim:b64") and
// the counters as of the snapshot. The map is owned by the caller and
// only valid for the duration of the call — copy it to retain it.
type MetricsSink func(source string, counters map[string]int64)

// EmitMetrics streams one snapshot to the current recorder: its
// OnMetrics sink when set, else a verbose progress line. Like Begin,
// it is nil-safe and costs one lookup when no recorder is installed.
func EmitMetrics(source string, counters map[string]int64) {
	if r := Current(); r != nil {
		r.EmitMetrics(source, counters)
	}
}

// EmitMetrics streams one snapshot to this recorder. nil-safe.
func (r *Recorder) EmitMetrics(source string, counters map[string]int64) {
	if r == nil {
		return
	}
	if r.OnMetrics != nil {
		r.OnMetrics(source, counters)
		return
	}
	if !r.Verbose {
		return
	}
	keys := make([]string, 0, len(counters))
	for k := range counters {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	var sb strings.Builder
	for _, k := range keys {
		fmt.Fprintf(&sb, " %s=%d", k, counters[k])
	}
	fmt.Fprintf(r.logw(), "obs: metrics %s%s\n", source, sb.String())
}
