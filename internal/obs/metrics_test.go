package obs

import (
	"bytes"
	"strings"
	"testing"
)

// TestEmitMetricsSink checks the streaming path: an installed
// OnMetrics sink receives every snapshot with its source label, and
// the verbose fallback renders a sorted progress line.
func TestEmitMetricsSink(t *testing.T) {
	defer Install(Default())

	var gotSource string
	var gotCounters map[string]int64
	rec := NewRecorder()
	rec.OnMetrics = func(source string, counters map[string]int64) {
		gotSource = source
		gotCounters = map[string]int64{}
		for k, v := range counters {
			gotCounters[k] = v
		}
	}
	Install(rec)

	EmitMetrics("sim:b64", map[string]int64{"refs": 100, "misses": 7})
	if gotSource != "sim:b64" {
		t.Errorf("sink source = %q", gotSource)
	}
	if gotCounters["refs"] != 100 || gotCounters["misses"] != 7 {
		t.Errorf("sink counters = %v", gotCounters)
	}

	// With no sink, a verbose recorder logs one line with the counters
	// in sorted key order.
	var buf bytes.Buffer
	rec2 := NewRecorder()
	rec2.Verbose = true
	rec2.LogW = &buf
	Install(rec2)
	EmitMetrics("sweep", map[string]int64{"b": 2, "a": 1})
	line := buf.String()
	if !strings.Contains(line, "obs: metrics sweep") || !strings.Contains(line, "a=1 b=2") {
		t.Errorf("verbose metrics line = %q", line)
	}

	// Quiet recorder without a sink: snapshot dropped silently.
	buf.Reset()
	rec2.Verbose = false
	EmitMetrics("sweep", map[string]int64{"a": 1})
	if buf.Len() != 0 {
		t.Errorf("quiet recorder logged: %q", buf.String())
	}
}

// TestEmitMetricsNilSafe checks the uninstalled and nil-recorder
// paths cost nothing and do not panic.
func TestEmitMetricsNilSafe(t *testing.T) {
	defer Install(Default())
	Install(nil)
	EmitMetrics("sim:b64", map[string]int64{"refs": 1})
	var r *Recorder
	r.EmitMetrics("sim:b64", map[string]int64{"refs": 1})
}
