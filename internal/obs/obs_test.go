package obs

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"
	"time"
)

func TestNilSpanIsNoOp(t *testing.T) {
	Install(nil)
	sp := Begin("anything")
	if sp != nil {
		t.Fatalf("Begin with no recorder = %v, want nil", sp)
	}
	// All of these must not panic.
	sp.Count("x", 1)
	sp.Set("y", 2)
	if got := sp.Counter("x"); got != 0 {
		t.Fatalf("nil span Counter = %d", got)
	}
	if sp.Find("z") != nil {
		t.Fatal("nil span Find != nil")
	}
	sp.End()
}

func TestSpanNestingAndCounters(t *testing.T) {
	rec := NewRecorder()
	Install(rec)
	defer Install(nil)

	outer := Begin("outer")
	inner := Begin("inner")
	inner.Count("items", 3)
	inner.Count("items", 2)
	inner.Set("limit", 10)
	inner.End()
	sib := Begin("sibling")
	sib.End()
	outer.End()

	spans := rec.Spans()
	if len(spans) != 1 || spans[0].Name != "outer" {
		t.Fatalf("top-level spans = %+v, want one 'outer'", spans)
	}
	kids := spans[0].Children
	if len(kids) != 2 || kids[0].Name != "inner" || kids[1].Name != "sibling" {
		t.Fatalf("children = %+v, want [inner sibling]", kids)
	}
	if got := kids[0].Counters["items"]; got != 5 {
		t.Errorf("items counter = %d, want 5", got)
	}
	if got := kids[0].Counters["limit"]; got != 10 {
		t.Errorf("limit counter = %d, want 10", got)
	}
	if spans[0].Wall <= 0 {
		t.Errorf("outer wall = %v, want > 0", spans[0].Wall)
	}
	if f := spans[0].Find("inner"); f == nil || f.Counter("items") != 5 {
		t.Errorf("Find(inner) = %+v", f)
	}
}

func TestEndClosesOpenChildren(t *testing.T) {
	rec := NewRecorder()
	outer := rec.Begin("outer")
	rec.Begin("leaked") // never explicitly ended
	outer.End()

	// After outer ends, new spans must attach at top level again.
	next := rec.Begin("next")
	next.End()

	spans := rec.Spans()
	if len(spans) != 2 || spans[0].Name != "outer" || spans[1].Name != "next" {
		t.Fatalf("spans = %+v, want [outer next]", spans)
	}
	if len(spans[0].Children) != 1 || spans[0].Children[0].Name != "leaked" {
		t.Fatalf("outer children = %+v, want [leaked]", spans[0].Children)
	}
	if spans[0].Children[0].Wall <= 0 {
		t.Error("leaked child has no wall time after forced close")
	}
}

func TestVerboseLogging(t *testing.T) {
	var buf bytes.Buffer
	rec := NewRecorder()
	rec.Verbose = true
	rec.LogW = &buf
	sp := rec.Begin("stage")
	sp.Count("pdvs", 4)
	sp.End()
	rec.Logf("done %d", 7)
	out := buf.String()
	for _, want := range []string{"stage", "pdvs=4", "done 7"} {
		if !strings.Contains(out, want) {
			t.Errorf("verbose log missing %q:\n%s", want, out)
		}
	}
}

func TestReportJSONRoundTrip(t *testing.T) {
	rec := NewRecorder()
	sp := rec.Begin("restructure")
	st := rec.Begin("pdv")
	st.Set("pdvs", 2)
	st.End()
	sp.End()

	rep := rec.Report("fsc")
	rep.Config = map[string]any{"nprocs": 12}
	rep.AddData("applied", 3)

	var buf bytes.Buffer
	if err := rep.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	var back Report
	if err := json.Unmarshal(buf.Bytes(), &back); err != nil {
		t.Fatalf("report does not round-trip: %v", err)
	}
	if back.Tool != "fsc" || len(back.Spans) != 1 {
		t.Fatalf("round-tripped report = %+v", back)
	}
	pdv := back.Spans[0].Find("pdv")
	if pdv == nil || pdv.Counters["pdvs"] != 2 {
		t.Fatalf("pdv span lost in round trip: %+v", back.Spans[0])
	}
	if back.Spans[0].Wall < 0 {
		t.Errorf("negative wall time")
	}
}

func TestReportCSV(t *testing.T) {
	rec := NewRecorder()
	sp := rec.Begin("a")
	st := rec.Begin("b")
	st.Set("n", 9)
	st.End()
	sp.End()
	var buf bytes.Buffer
	if err := rec.Report("t").WriteCSV(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if !strings.Contains(out, "span,wall_ns,counter,value") {
		t.Errorf("missing CSV header:\n%s", out)
	}
	if !strings.Contains(out, "a/b,,n,9") {
		t.Errorf("missing counter row for a/b:\n%s", out)
	}
}

func TestSnapshotOfOpenSpans(t *testing.T) {
	rec := NewRecorder()
	rec.Begin("open")
	time.Sleep(time.Millisecond)
	spans := rec.Spans()
	if len(spans) != 1 || spans[0].Wall <= 0 {
		t.Fatalf("open span snapshot = %+v, want positive wall", spans)
	}
}

func TestConcurrentCounting(t *testing.T) {
	rec := NewRecorder()
	sp := rec.Begin("par")
	done := make(chan struct{})
	for i := 0; i < 8; i++ {
		go func() {
			for j := 0; j < 1000; j++ {
				sp.Count("n", 1)
			}
			done <- struct{}{}
		}()
	}
	for i := 0; i < 8; i++ {
		<-done
	}
	sp.End()
	if got := sp.Counter("n"); got != 8000 {
		t.Fatalf("concurrent counter = %d, want 8000", got)
	}
}

func TestRecorderFind(t *testing.T) {
	var nilRec *Recorder
	if nilRec.Find("x") != nil {
		t.Error("nil recorder Find != nil")
	}
	rec := NewRecorder()
	Install(rec)
	defer Install(nil)
	outer := Begin("outer")
	inner := Begin("inner")
	inner.Count("items", 5)
	inner.End()
	outer.End()
	top := Begin("request")
	defer top.End()

	if f := rec.Find("inner"); f == nil || f.Counter("items") != 5 {
		t.Errorf("Find(inner) = %+v", f)
	}
	if f := rec.Find("request"); f == nil {
		t.Error("Find missed an open top-level span")
	}
	if rec.Find("absent") != nil {
		t.Error("Find invented a span")
	}
}
