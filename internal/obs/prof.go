package obs

import (
	"fmt"
	"os"
	"runtime"
	"runtime/pprof"
)

// StartCPUProfile begins CPU profiling to path and returns the stop
// function. The CLIs wire this to -cpuprofile.
func StartCPUProfile(path string) (stop func(), err error) {
	f, err := os.Create(path)
	if err != nil {
		return nil, err
	}
	if err := pprof.StartCPUProfile(f); err != nil {
		f.Close()
		return nil, fmt.Errorf("cpu profile: %w", err)
	}
	return func() {
		pprof.StopCPUProfile()
		f.Close()
	}, nil
}

// WriteHeapProfile writes an allocation profile to path (after a GC,
// so live-heap numbers are accurate). The CLIs wire this to
// -memprofile.
func WriteHeapProfile(path string) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	runtime.GC()
	if err := pprof.WriteHeapProfile(f); err != nil {
		f.Close()
		return fmt.Errorf("heap profile: %w", err)
	}
	return f.Close()
}
