package obs

import (
	"encoding/csv"
	"encoding/json"
	"fmt"
	"io"
	"os"
	"sort"
	"time"
)

// Report is a machine-readable run manifest: tool identity, run
// configuration, the recorded span tree, and tool-specific result
// data. The CLIs write one per run (-report), the experiments harness
// one per figure/table, so performance trajectories diff as JSON.
type Report struct {
	Tool    string         `json:"tool"`
	Started time.Time      `json:"started"`
	WallMS  float64        `json:"wall_ms"`
	Config  map[string]any `json:"config,omitempty"`
	Spans   []*Span        `json:"spans,omitempty"`
	Data    map[string]any `json:"data,omitempty"`
}

// Report snapshots the recorder into a manifest for the named tool.
func (r *Recorder) Report(tool string) *Report {
	rep := &Report{Tool: tool, Data: map[string]any{}}
	if r != nil {
		rep.Started = r.started
		rep.WallMS = float64(time.Since(r.started)) / float64(time.Millisecond)
		rep.Spans = r.Spans()
	}
	return rep
}

// AddData attaches one tool-specific result value.
func (rep *Report) AddData(key string, v any) {
	if rep.Data == nil {
		rep.Data = map[string]any{}
	}
	rep.Data[key] = v
}

// spanJSON is the wire form of a span.
type spanJSON struct {
	Name     string           `json:"name"`
	WallNS   int64            `json:"wall_ns"`
	WallMS   float64          `json:"wall_ms"`
	Counters map[string]int64 `json:"counters,omitempty"`
	Children []*Span          `json:"children,omitempty"`
}

// MarshalJSON renders the span with wall time in both ns (exact) and
// ms (human-scaled).
func (s *Span) MarshalJSON() ([]byte, error) {
	return json.Marshal(spanJSON{
		Name:     s.Name,
		WallNS:   s.Wall.Nanoseconds(),
		WallMS:   float64(s.Wall) / float64(time.Millisecond),
		Counters: s.Counters,
		Children: s.Children,
	})
}

// UnmarshalJSON restores a span written by MarshalJSON (round-tripping
// reports in tests and tooling).
func (s *Span) UnmarshalJSON(b []byte) error {
	var in spanJSON
	if err := json.Unmarshal(b, &in); err != nil {
		return err
	}
	s.Name = in.Name
	s.Wall = time.Duration(in.WallNS)
	s.Counters = in.Counters
	s.Children = in.Children
	return nil
}

// WriteJSON writes the report as indented JSON.
func (rep *Report) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(rep)
}

// WriteFile writes the report as JSON to path.
func (rep *Report) WriteFile(path string) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := rep.WriteJSON(f); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

// WriteCSV flattens the span tree to CSV rows: one row per span
// (empty counter column) plus one row per counter, with the span
// identified by its slash-joined path.
func (rep *Report) WriteCSV(w io.Writer) error {
	cw := csv.NewWriter(w)
	if err := cw.Write([]string{"span", "wall_ns", "counter", "value"}); err != nil {
		return err
	}
	var walk func(prefix string, spans []*Span) error
	walk = func(prefix string, spans []*Span) error {
		for _, s := range spans {
			path := s.Name
			if prefix != "" {
				path = prefix + "/" + s.Name
			}
			if err := cw.Write([]string{path, fmt.Sprint(s.Wall.Nanoseconds()), "", ""}); err != nil {
				return err
			}
			keys := make([]string, 0, len(s.Counters))
			for k := range s.Counters {
				keys = append(keys, k)
			}
			sort.Strings(keys)
			for _, k := range keys {
				if err := cw.Write([]string{path, "", k, fmt.Sprint(s.Counters[k])}); err != nil {
					return err
				}
			}
			if err := walk(path, s.Children); err != nil {
				return err
			}
		}
		return nil
	}
	if err := walk("", rep.Spans); err != nil {
		return err
	}
	cw.Flush()
	return cw.Error()
}
