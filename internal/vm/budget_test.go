package vm_test

import (
	"context"
	"errors"
	"strings"
	"testing"
	"time"

	"falseshare/internal/core"
	"falseshare/internal/faultinject"
	"falseshare/internal/vm"
)

// spinSource loops forever: the shape of a restructurer bug that
// produces a non-terminating program.
const spinSource = `
shared int sink[4];
void main() {
    int i;
    i = 0;
    while (i < 2000000000) {
        sink[pid % 4] = i;
        i = i + 1;
    }
}
`

// TestStepBudgetExceeded: a runaway program fails with a step-budget
// error naming the instruction count and pc instead of hanging.
func TestStepBudgetExceeded(t *testing.T) {
	prog, err := core.Compile(spinSource, core.Options{Nprocs: 2, BlockSize: 64})
	if err != nil {
		t.Fatal(err)
	}
	bc, err := vm.Compile(prog.File, prog.Info, prog.Layout, 2)
	if err != nil {
		t.Fatal(err)
	}
	m := vm.New(bc)
	m.MaxInstrs = 50_000 // small cap so the test is instant
	err = m.Run(nil)
	if err == nil {
		t.Fatal("runaway program terminated?")
	}
	var re *vm.RunError
	if !errors.As(err, &re) {
		t.Fatalf("want *vm.RunError, got %T: %v", err, err)
	}
	msg := err.Error()
	if !strings.Contains(msg, "step budget exceeded (50000 instrs)") || !strings.Contains(msg, "at pc=") {
		t.Errorf("budget error lacks count/pc: %q", msg)
	}
}

// TestRunCancellation: cancelling the machine's context stops the run
// promptly with the context's error.
func TestRunCancellation(t *testing.T) {
	prog, err := core.Compile(spinSource, core.Options{Nprocs: 2, BlockSize: 64})
	if err != nil {
		t.Fatal(err)
	}
	bc, err := vm.Compile(prog.File, prog.Info, prog.Layout, 2)
	if err != nil {
		t.Fatal(err)
	}
	m := vm.New(bc)
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Millisecond)
	defer cancel()
	m.SetContext(ctx)
	start := time.Now()
	err = m.Run(nil)
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("want DeadlineExceeded, got %v", err)
	}
	if d := time.Since(start); d > 2*time.Second {
		t.Errorf("cancellation took %v to take effect", d)
	}
}

// TestRunFaultPoint: an injected vm.run error aborts the run before
// any instruction executes.
func TestRunFaultPoint(t *testing.T) {
	s, err := faultinject.Parse("vm.run:error:count=1")
	if err != nil {
		t.Fatal(err)
	}
	faultinject.Enable(s)
	t.Cleanup(faultinject.Disable)

	prog, err := core.Compile(spinSource, core.Options{Nprocs: 2, BlockSize: 64})
	if err != nil {
		t.Fatal(err)
	}
	bc, err := vm.Compile(prog.File, prog.Info, prog.Layout, 2)
	if err != nil {
		t.Fatal(err)
	}
	m := vm.New(bc)
	m.MaxInstrs = 1000
	var fe *faultinject.Error
	if err := m.Run(nil); !errors.As(err, &fe) {
		t.Fatalf("want injected fault, got %v", err)
	}
	if m.TotalInstrs() != 0 {
		t.Errorf("instructions ran before the fault: %d", m.TotalInstrs())
	}
}
