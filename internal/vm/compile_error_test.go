package vm

import (
	"strings"
	"testing"

	"falseshare/internal/lang/parser"
	"falseshare/internal/lang/types"
	"falseshare/internal/layout"
)

// compileRaw runs the front end and vm compiler without core's
// convenience wrapper, so tests can reach vm-level errors.
func compileRaw(t *testing.T, src string, nprocs int) (*Program, error) {
	t.Helper()
	f, err := parser.Parse(src)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	info, err := types.Check(f)
	if err != nil {
		t.Fatalf("check: %v", err)
	}
	lay, err := layout.Compute(info, layout.NewDirectives(64), int64(nprocs))
	if err != nil {
		t.Fatalf("layout: %v", err)
	}
	return Compile(f, info, lay, nprocs)
}

func TestCompileProducesLineInfo(t *testing.T) {
	src := `
shared int a[4];
void main() {
    a[0] = 1;
}
`
	prog, err := compileRaw(t, src, 2)
	if err != nil {
		t.Fatal(err)
	}
	main := prog.Funcs[prog.Main]
	hasLine := false
	for _, in := range main.Code {
		if in.Line == 4 {
			hasLine = true
		}
	}
	if !hasLine {
		t.Errorf("no instruction carries the assignment's line:\n%s", main.Disasm())
	}
}

func TestCompileBoundsChecksEmitted(t *testing.T) {
	src := `
shared int a[7];
void main() {
    for (int i = 0; i < 7; i = i + 1) {
        a[i] = i;
    }
}
`
	prog, err := compileRaw(t, src, 2)
	if err != nil {
		t.Fatal(err)
	}
	found := false
	for _, in := range prog.Funcs[prog.Main].Code {
		if in.Op == OpCheck && in.A == 7 {
			found = true
		}
	}
	if !found {
		t.Errorf("bounds check missing:\n%s", prog.Funcs[prog.Main].Disasm())
	}
}

func TestCompileNprocsSizedArrays(t *testing.T) {
	src := `
shared int per[2 * nprocs];
void main() {
    per[pid] = 1;
    per[pid + nprocs] = 2;
}
`
	for _, n := range []int{1, 7, 56} {
		prog, err := compileRaw(t, src, n)
		if err != nil {
			t.Fatalf("nprocs=%d: %v", n, err)
		}
		m := New(prog)
		if err := m.Run(nil); err != nil {
			t.Fatalf("nprocs=%d run: %v", n, err)
		}
	}
}

func TestMachineAccessors(t *testing.T) {
	src := `
shared int x;
shared double d;
void main() {
    if (pid == 0) {
        x = 42;
        d = 1.25;
    }
}
`
	f, _ := parser.Parse(src)
	info, _ := types.Check(f)
	lay, _ := layout.Compute(info, layout.NewDirectives(64), 2)
	prog, err := Compile(f, info, lay, 2)
	if err != nil {
		t.Fatal(err)
	}
	m := New(prog)
	if err := m.Run(nil); err != nil {
		t.Fatal(err)
	}
	if got := m.ReadInt(lay.Var("x").Base); got != 42 {
		t.Errorf("ReadInt = %d", got)
	}
	if got := m.ReadDouble(lay.Var("d").Base); got != 1.25 {
		t.Errorf("ReadDouble = %v", got)
	}
	if len(m.Mem()) != int(prog.SharedEnd) {
		t.Errorf("Mem length mismatch")
	}
	// Counters populated.
	for _, p := range m.Procs() {
		if p.Instrs == 0 {
			t.Errorf("proc %d executed nothing", p.ID)
		}
	}
}

func TestRunErrorFormatting(t *testing.T) {
	e := &RunError{Proc: 3, Fn: "main", Line: 7, Msg: "boom"}
	s := e.Error()
	for _, want := range []string{"proc 3", "main:7", "boom"} {
		if !strings.Contains(s, want) {
			t.Errorf("error %q missing %q", s, want)
		}
	}
}
