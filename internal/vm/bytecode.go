// Package vm compiles checked parc programs to bytecode and executes
// them SPMD-style on a stepped virtual machine.
//
// The machine plays the role of the paper's traced multiprocessor
// execution [EKKL90]: every process runs the same code with its own
// pid, the scheduler interleaves processes round-robin one shared
// memory reference at a time, and barriers and locks synchronize
// exactly as the coherence study requires (spinning on a lock word
// generates the read traffic that makes lock co-allocation expensive).
// The emitted reference stream drives the multiprocessor cache
// simulator.
package vm

import "fmt"

// Op is a bytecode opcode.
type Op uint8

// Opcodes. The stack holds 64-bit raw values: integers as int64,
// doubles as float64 bits, pointers as byte addresses into the shared
// (or tagged private) address space.
const (
	OpNop Op = iota

	// Constants and built-ins.
	OpPush    // push immediate A (int64)
	OpPushPid // push process id
	OpPushNP  // push process count

	// Locals (frame slots).
	OpLoadLocal  // push locals[A]
	OpStoreLocal // locals[A] = pop

	// Memory. Addresses with the private tag bit access the per-process
	// private space (untraced); others access shared memory (traced).
	OpLoad4  // pop addr; push sign-extended 32-bit load
	OpLoad8  // pop addr; push 64-bit load
	OpStore4 // pop addr, pop value; 32-bit store
	OpStore8 // pop addr, pop value; 64-bit store

	// Pointer indexing: pop index, pop pointer; push pointer +
	// index*stride, where the stride comes from the allocation record
	// of the pointed-to block (this is how padded heap elements keep
	// working without retyping every pointer). A is the static element
	// size used for bounds checking and as the fallback stride.
	OpIndexPtr

	// Bounds check: top of stack is an index; trap unless 0 <= idx < A.
	OpCheck

	// Integer arithmetic.
	OpAddI
	OpSubI
	OpMulI
	OpDivI
	OpModI
	OpNegI

	// Double arithmetic (operands are float64 bit patterns).
	OpAddF
	OpSubF
	OpMulF
	OpDivF
	OpNegF
	OpI2F // int64 -> float64 bits

	// Comparisons (push 1 or 0 as int64).
	OpEqI
	OpNeI
	OpLtI
	OpLeI
	OpGtI
	OpGeI
	OpEqF
	OpNeF
	OpLtF
	OpLeF
	OpGtF
	OpGeF
	OpNot

	// Control flow.
	OpJmp  // pc = A
	OpJz   // pop; if zero pc = A
	OpCall // call function A
	OpRet  // return, no value
	OpRetV // pop value, return it

	// Allocation. A is the element stride in bytes, B the element
	// count when the count is static (-1: count on stack).
	OpAllocHeap  // push address of zeroed shared heap block
	OpAllocArena // push address in the executing process's arena

	// Synchronization.
	OpBarrier
	OpLockAcq // pop lock address; spin until acquired
	OpLockRel // pop lock address; release

	// Local array allocation: reserve A bytes of per-process private
	// frame storage and store its tagged address in locals[B].
	OpLocalArr

	OpHalt // end of process (falling off main)
	OpPop  // discard top of stack
)

var opNames = [...]string{
	OpNop: "nop", OpPush: "push", OpPushPid: "pushpid", OpPushNP: "pushnp",
	OpLoadLocal: "loadl", OpStoreLocal: "storel",
	OpLoad4: "load4", OpLoad8: "load8", OpStore4: "store4", OpStore8: "store8",
	OpIndexPtr: "indexptr", OpCheck: "check",
	OpAddI: "addi", OpSubI: "subi", OpMulI: "muli", OpDivI: "divi", OpModI: "modi", OpNegI: "negi",
	OpAddF: "addf", OpSubF: "subf", OpMulF: "mulf", OpDivF: "divf", OpNegF: "negf", OpI2F: "i2f",
	OpEqI: "eqi", OpNeI: "nei", OpLtI: "lti", OpLeI: "lei", OpGtI: "gti", OpGeI: "gei",
	OpEqF: "eqf", OpNeF: "nef", OpLtF: "ltf", OpLeF: "lef", OpGtF: "gtf", OpGeF: "gef",
	OpNot: "not",
	OpJmp: "jmp", OpJz: "jz", OpCall: "call", OpRet: "ret", OpRetV: "retv",
	OpAllocHeap: "alloch", OpAllocArena: "alloca",
	OpBarrier: "barrier", OpLockAcq: "lockacq", OpLockRel: "lockrel",
	OpLocalArr: "localarr", OpHalt: "halt", OpPop: "pop",
}

func (o Op) String() string {
	if int(o) < len(opNames) && opNames[o] != "" {
		return opNames[o]
	}
	return fmt.Sprintf("op%d", int(o))
}

// Instr is one bytecode instruction.
type Instr struct {
	Op   Op
	A, B int64
	// Line is the source line for runtime diagnostics.
	Line int
}

// Func is a compiled function.
type Func struct {
	Name    string
	ID      int
	NParams int
	NLocals int // including params
	Code    []Instr
}

// PrivTag marks addresses in the per-process private space (private
// globals and local arrays). Private accesses are real loads/stores in
// the VM but are not part of the shared reference trace.
const PrivTag int64 = 1 << 62

// Program is a fully compiled parc program.
type Program struct {
	Funcs  []*Func
	Main   int // index of main
	FuncID map[string]int
	// SharedEnd is the size of the shared address space (from layout).
	SharedEnd int64
	// HeapBase/ArenaBase/ArenaSize replicate the layout's map for the
	// machine's allocators.
	HeapBase  int64
	ArenaBase int64
	ArenaSize int64
	// PrivSize is the per-process private space size (private globals
	// plus headroom for local arrays).
	PrivSize int64
	// Nprocs is the configured process count the program was compiled
	// for (array extents may depend on it).
	Nprocs int
}

// Disasm renders a function's code for debugging.
func (f *Func) Disasm() string {
	s := fmt.Sprintf("func %s (params=%d locals=%d)\n", f.Name, f.NParams, f.NLocals)
	for i, in := range f.Code {
		s += fmt.Sprintf("  %4d  %-9s %d %d\n", i, in.Op, in.A, in.B)
	}
	return s
}
