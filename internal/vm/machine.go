package vm

import (
	"context"
	"encoding/binary"
	"fmt"
	"math"
	"sort"

	"falseshare/internal/faultinject"
	"falseshare/internal/obs"
)

// Ref is one shared-memory reference in the trace.
type Ref struct {
	Proc  int
	Addr  int64
	Size  int8
	Write bool
}

// nullPage is the unmapped low address range; dereferences into it are
// reported as null-pointer errors.
const nullPage = 0x1000

// Status is a process's scheduling state.
type Status int

const (
	Running Status = iota
	AtBarrier
	Done
)

type frame struct {
	fn       *Func
	pc       int
	locals   []int64
	privMark int64
}

// Proc is one SPMD process.
type Proc struct {
	ID     int
	frames []frame
	stack  []int64
	priv   []byte
	bump   int64 // private-space bump pointer (local arrays)
	status Status

	// Instrs counts executed instructions (the KSR model's CPU work).
	Instrs int64
	// Spins counts failed lock acquisition attempts.
	Spins int64
	// Refs counts emitted shared references.
	Refs int64
}

type allocEntry struct {
	start, end, stride int64
}

// Machine executes a compiled program with nprocs processes.
type Machine struct {
	prog   *Program
	nprocs int
	mem    []byte
	procs  []*Proc

	heapPtr  int64
	arenaPtr []int64
	// heapAllocs and arenaAllocs record element strides for pointer
	// indexing (padded heap blocks keep their stride here).
	heapAllocs  []allocEntry
	arenaAllocs [][]allocEntry

	// MaxInstrs is the step budget: it bounds per-process execution so
	// a non-terminating program (a restructurer bug, an adversarial
	// input) fails with "step budget exceeded" instead of hanging the
	// whole sweep. Zero means the default of 1e9.
	MaxInstrs int64

	// OnBarrier, when set, is invoked at every barrier release — the
	// execution-time model uses it to account work phase by phase.
	OnBarrier func()

	// ctx, when set, cancels the run cooperatively: the scheduler
	// checks it periodically and Run returns its error.
	ctx context.Context

	barrierCount int64
}

// RunError is a runtime error with source location.
type RunError struct {
	Proc int
	Fn   string
	Line int
	Msg  string
}

func (e *RunError) Error() string {
	return fmt.Sprintf("vm: proc %d: %s:%d: %s", e.Proc, e.Fn, e.Line, e.Msg)
}

// New creates a machine for the program's configured process count.
func New(prog *Program) *Machine {
	n := prog.Nprocs
	m := &Machine{
		prog:        prog,
		nprocs:      n,
		mem:         make([]byte, prog.SharedEnd),
		heapPtr:     prog.HeapBase,
		arenaPtr:    make([]int64, n),
		arenaAllocs: make([][]allocEntry, n),
		MaxInstrs:   1e9,
	}
	for p := 0; p < n; p++ {
		m.arenaPtr[p] = prog.ArenaBase + int64(p)*prog.ArenaSize
	}
	for p := 0; p < n; p++ {
		main := prog.Funcs[prog.Main]
		proc := &Proc{
			ID:   p,
			priv: make([]byte, prog.PrivSize),
			bump: prog.PrivSize / 2, // local arrays grow above private globals
		}
		proc.frames = []frame{{fn: main, locals: make([]int64, main.NLocals)}}
		m.procs = append(m.procs, proc)
	}
	return m
}

// / SetContext makes the run cancellable: the scheduler polls ctx
// between rounds and Run returns ctx.Err() once it is cancelled. The
// experiment pool routes per-job deadlines and Ctrl-C through here.
func (m *Machine) SetContext(ctx context.Context) { m.ctx = ctx }

// Procs exposes the per-process counters after a run.
func (m *Machine) Procs() []*Proc { return m.procs }

// Mem returns the shared memory image (for tests).
func (m *Machine) Mem() []byte { return m.mem }

// Barriers returns the number of barrier episodes executed.
func (m *Machine) Barriers() int64 { return m.barrierCount }

// TotalInstrs sums executed instructions across processes.
func (m *Machine) TotalInstrs() int64 {
	var n int64
	for _, p := range m.procs {
		n += p.Instrs
	}
	return n
}

// TotalRefs sums emitted shared references across processes.
func (m *Machine) TotalRefs() int64 {
	var n int64
	for _, p := range m.procs {
		n += p.Refs
	}
	return n
}

// TotalSpins sums failed lock acquisitions across processes.
func (m *Machine) TotalSpins() int64 {
	var n int64
	for _, p := range m.procs {
		n += p.Spins
	}
	return n
}

// ReadInt reads a 4-byte integer from shared memory (for tests).
func (m *Machine) ReadInt(addr int64) int64 {
	return int64(int32(binary.LittleEndian.Uint32(m.mem[addr:])))
}

// ReadDouble reads an 8-byte double from shared memory (for tests).
func (m *Machine) ReadDouble(addr int64) float64 {
	return math.Float64frombits(binary.LittleEndian.Uint64(m.mem[addr:]))
}

// ReadPtr reads an 8-byte pointer word from shared memory.
func (m *Machine) ReadPtr(addr int64) int64 {
	return int64(binary.LittleEndian.Uint64(m.mem[addr:]))
}

// AllocSpan returns the shared-heap allocation containing addr —
// its start, end and element stride — or ok=false when addr lies in
// no recorded allocation. The translation validator uses it to
// enumerate the heap elements behind a shared pointer global.
func (m *Machine) AllocSpan(addr int64) (start, end, stride int64, ok bool) {
	for _, e := range m.heapAllocs {
		if addr >= e.start && addr < e.end {
			return e.start, e.end, e.stride, true
		}
	}
	return 0, 0, 0, false
}

// Span describes one recorded allocation: [Start, End) with element
// stride Stride (padded heap blocks keep the padded stride).
type Span struct {
	Start  int64 `json:"start"`
	End    int64 `json:"end"`
	Stride int64 `json:"stride"`
}

// AllocSpans returns every shared-heap allocation in allocation
// order. The attribution layer uses it to freeze a complete
// address→object map after a run, covering spans no miss happened to
// touch.
func (m *Machine) AllocSpans() []Span {
	out := make([]Span, len(m.heapAllocs))
	for i, e := range m.heapAllocs {
		out[i] = Span{Start: e.start, End: e.end, Stride: e.stride}
	}
	return out
}

// Run executes the program to completion, passing every shared memory
// reference to sink (which may be nil). The scheduler grants turns
// round-robin; each turn advances a process until it issues one shared
// reference, reaches a barrier, finishes, or exhausts its slice of
// private computation.
func (m *Machine) Run(sink func(Ref)) error {
	sp := obs.Begin("vm.run")
	err := m.run(sink)
	if sp != nil {
		sp.Set("procs", int64(m.nprocs))
		sp.Set("instrs", m.TotalInstrs())
		sp.Set("refs", m.TotalRefs())
		sp.Set("spins", m.TotalSpins())
		sp.Set("barriers", m.barrierCount)
	}
	sp.End()
	return err
}

func (m *Machine) run(sink func(Ref)) error {
	if err := faultinject.Fire(m.ctx, "vm.run", ""); err != nil {
		return err
	}
	const slice = 20000 // private instructions per turn
	// ctx poll period, in scheduler rounds: frequent enough that a
	// cancelled sweep drains in microseconds, rare enough that the
	// mutex inside ctx.Err() stays invisible next to simulation cost.
	const pollEvery = 256
	for round := 0; ; round++ {
		if m.ctx != nil && round%pollEvery == 0 {
			if err := m.ctx.Err(); err != nil {
				return err
			}
		}
		anyRunning := false
		atBarrier := 0
		done := 0
		for _, p := range m.procs {
			switch p.status {
			case Done:
				done++
				continue
			case AtBarrier:
				atBarrier++
				continue
			}
			anyRunning = true
			if err := m.step(p, slice, sink); err != nil {
				return err
			}
		}
		if done == m.nprocs {
			return nil
		}
		if !anyRunning {
			// Everyone is waiting: release the barrier if every live
			// process reached it; otherwise we are deadlocked.
			if atBarrier > 0 && atBarrier+done == m.nprocs {
				for _, p := range m.procs {
					if p.status == AtBarrier {
						p.status = Running
					}
				}
				m.barrierCount++
				if m.OnBarrier != nil {
					m.OnBarrier()
				}
				continue
			}
			return &RunError{Msg: "deadlock: no runnable process"}
		}
	}
}

// step advances one process until it emits a shared reference, blocks,
// finishes, or runs out of its private-instruction slice.
func (m *Machine) step(p *Proc, slice int, sink func(Ref)) error {
	for i := 0; i < slice; i++ {
		f := &p.frames[len(p.frames)-1]
		if f.pc >= len(f.Code()) {
			return m.fail(p, f, "fell off end of code")
		}
		in := f.Code()[f.pc]
		p.Instrs++
		if p.Instrs > m.max() {
			return m.fail(p, f, "step budget exceeded (%d instrs) at pc=%d (runaway program?)", p.Instrs-1, f.pc)
		}

		emitted, blocked, err := m.exec(p, f, in, sink)
		if err != nil {
			return err
		}
		if p.status == Done || p.status == AtBarrier {
			return nil
		}
		if blocked {
			return nil // lock spin: yield after the read
		}
		if emitted {
			return nil
		}
	}
	return nil
}

func (m *Machine) max() int64 {
	if m.MaxInstrs > 0 {
		return m.MaxInstrs
	}
	return 1e9
}

func (f *frame) Code() []Instr { return f.fn.Code }

func (m *Machine) fail(p *Proc, f *frame, format string, args ...any) error {
	line := 0
	if f.pc < len(f.fn.Code) {
		line = f.fn.Code[f.pc].Line
	}
	return &RunError{Proc: p.ID, Fn: f.fn.Name, Line: line, Msg: fmt.Sprintf(format, args...)}
}

func (p *Proc) push(v int64) { p.stack = append(p.stack, v) }
func (p *Proc) pop() int64 {
	v := p.stack[len(p.stack)-1]
	p.stack = p.stack[:len(p.stack)-1]
	return v
}
func (p *Proc) top() int64 { return p.stack[len(p.stack)-1] }

// exec executes one instruction. It returns emitted=true when a shared
// reference was issued and blocked=true when the process must yield
// without advancing (lock spin).
func (m *Machine) exec(p *Proc, f *frame, in Instr, sink func(Ref)) (emitted, blocked bool, err error) {
	switch in.Op {
	case OpNop:
	case OpPush:
		p.push(in.A)
	case OpPushPid:
		p.push(int64(p.ID))
	case OpPushNP:
		p.push(int64(m.nprocs))
	case OpLoadLocal:
		p.push(f.locals[in.A])
	case OpStoreLocal:
		f.locals[in.A] = p.pop()
	case OpPop:
		p.pop()

	case OpLoad4:
		addr := p.pop()
		v, e := m.load(p, f, addr, 4, sink, &emitted)
		if e != nil {
			return false, false, e
		}
		p.push(v)
	case OpLoad8:
		addr := p.pop()
		v, e := m.load(p, f, addr, 8, sink, &emitted)
		if e != nil {
			return false, false, e
		}
		p.push(v)
	case OpStore4:
		addr := p.pop()
		v := p.pop()
		if e := m.store(p, f, addr, v, 4, sink, &emitted); e != nil {
			return false, false, e
		}
	case OpStore8:
		addr := p.pop()
		v := p.pop()
		if e := m.store(p, f, addr, v, 8, sink, &emitted); e != nil {
			return false, false, e
		}

	case OpIndexPtr:
		idx := p.pop()
		ptr := p.pop()
		if ptr == 0 {
			return false, false, m.fail(p, f, "null pointer dereference")
		}
		stride := m.strideOf(ptr, in.A)
		p.push(ptr + idx*stride)

	case OpCheck:
		idx := p.top()
		if idx < 0 || idx >= in.A {
			return false, false, m.fail(p, f, "index %d out of range [0,%d)", idx, in.A)
		}

	case OpAddI:
		b := p.pop()
		p.push(p.pop() + b)
	case OpSubI:
		b := p.pop()
		p.push(p.pop() - b)
	case OpMulI:
		b := p.pop()
		p.push(p.pop() * b)
	case OpDivI:
		b := p.pop()
		if b == 0 {
			return false, false, m.fail(p, f, "integer division by zero")
		}
		p.push(p.pop() / b)
	case OpModI:
		b := p.pop()
		if b == 0 {
			return false, false, m.fail(p, f, "integer modulo by zero")
		}
		p.push(p.pop() % b)
	case OpNegI:
		p.push(-p.pop())

	case OpAddF:
		b := pf(p.pop())
		p.push(fp(pf(p.pop()) + b))
	case OpSubF:
		b := pf(p.pop())
		p.push(fp(pf(p.pop()) - b))
	case OpMulF:
		b := pf(p.pop())
		p.push(fp(pf(p.pop()) * b))
	case OpDivF:
		b := pf(p.pop())
		p.push(fp(pf(p.pop()) / b))
	case OpNegF:
		p.push(fp(-pf(p.pop())))
	case OpI2F:
		p.push(fp(float64(p.pop())))

	case OpEqI:
		b := p.pop()
		p.push(b2i(p.pop() == b))
	case OpNeI:
		b := p.pop()
		p.push(b2i(p.pop() != b))
	case OpLtI:
		b := p.pop()
		p.push(b2i(p.pop() < b))
	case OpLeI:
		b := p.pop()
		p.push(b2i(p.pop() <= b))
	case OpGtI:
		b := p.pop()
		p.push(b2i(p.pop() > b))
	case OpGeI:
		b := p.pop()
		p.push(b2i(p.pop() >= b))
	case OpEqF:
		b := pf(p.pop())
		p.push(b2i(pf(p.pop()) == b))
	case OpNeF:
		b := pf(p.pop())
		p.push(b2i(pf(p.pop()) != b))
	case OpLtF:
		b := pf(p.pop())
		p.push(b2i(pf(p.pop()) < b))
	case OpLeF:
		b := pf(p.pop())
		p.push(b2i(pf(p.pop()) <= b))
	case OpGtF:
		b := pf(p.pop())
		p.push(b2i(pf(p.pop()) > b))
	case OpGeF:
		b := pf(p.pop())
		p.push(b2i(pf(p.pop()) >= b))
	case OpNot:
		p.push(b2i(p.pop() == 0))

	case OpJmp:
		f.pc = int(in.A)
		return false, false, nil
	case OpJz:
		if p.pop() == 0 {
			f.pc = int(in.A)
			return false, false, nil
		}

	case OpCall:
		callee := m.prog.Funcs[in.A]
		nf := frame{fn: callee, locals: make([]int64, callee.NLocals), privMark: p.bump}
		for i := callee.NParams - 1; i >= 0; i-- {
			nf.locals[i] = p.pop()
		}
		f.pc++
		p.frames = append(p.frames, nf)
		return false, false, nil
	case OpRet, OpRetV:
		var v int64
		if in.Op == OpRetV {
			v = p.pop()
		}
		p.bump = f.privMark
		p.frames = p.frames[:len(p.frames)-1]
		if len(p.frames) == 0 {
			p.status = Done
			return false, false, nil
		}
		if in.Op == OpRetV {
			p.push(v)
		}
		return false, false, nil
	case OpHalt:
		p.status = Done
		return false, false, nil

	case OpAllocHeap:
		stride := in.A
		count := int64(1)
		align := int64(8)
		if in.B&1 != 0 {
			count = p.pop()
		}
		if a := in.B >> 1; a > align {
			align = a
		}
		if count < 0 {
			return false, false, m.fail(p, f, "negative allocation count %d", count)
		}
		m.heapPtr = align64(m.heapPtr, align)
		addr := m.heapPtr
		total := stride * count
		if addr+total > m.prog.ArenaBase {
			return false, false, m.fail(p, f, "shared heap exhausted")
		}
		m.heapPtr += total
		m.heapAllocs = append(m.heapAllocs, allocEntry{addr, addr + total, stride})
		p.push(addr)

	case OpAllocArena:
		stride := in.A
		count := int64(1)
		if in.B&1 != 0 {
			count = p.pop()
		}
		base := m.arenaPtr[p.ID]
		base = align64(base, 8)
		total := stride * count
		limit := m.prog.ArenaBase + int64(p.ID+1)*m.prog.ArenaSize
		if base+total > limit {
			return false, false, m.fail(p, f, "process arena exhausted")
		}
		m.arenaPtr[p.ID] = base + total
		m.arenaAllocs[p.ID] = append(m.arenaAllocs[p.ID], allocEntry{base, base + total, stride})
		p.push(base)

	case OpBarrier:
		p.status = AtBarrier
		f.pc++
		return false, false, nil

	case OpLockAcq:
		addr := p.top()
		if addr&PrivTag != 0 || addr <= 0 || addr+4 > int64(len(m.mem)) {
			return false, false, m.fail(p, f, "invalid lock address %#x", addr)
		}
		v := int64(int32(binary.LittleEndian.Uint32(m.mem[addr:])))
		m.emit(p, sink, Ref{Proc: p.ID, Addr: addr, Size: 4, Write: false})
		if v != 0 {
			// Held: spin. Keep the address on the stack and retry this
			// instruction on the next turn.
			p.Spins++
			return true, true, nil
		}
		p.pop()
		binary.LittleEndian.PutUint32(m.mem[addr:], 1)
		m.emit(p, sink, Ref{Proc: p.ID, Addr: addr, Size: 4, Write: true})
		emitted = true

	case OpLockRel:
		addr := p.pop()
		if addr&PrivTag != 0 || addr <= 0 || addr+4 > int64(len(m.mem)) {
			return false, false, m.fail(p, f, "invalid lock address %#x", addr)
		}
		binary.LittleEndian.PutUint32(m.mem[addr:], 0)
		m.emit(p, sink, Ref{Proc: p.ID, Addr: addr, Size: 4, Write: true})
		emitted = true

	case OpLocalArr:
		size := align64(in.A, 8)
		base := p.bump
		if base+size > int64(len(p.priv)) {
			return false, false, m.fail(p, f, "private space exhausted")
		}
		p.bump += size
		// Zero the array (fresh storage per execution).
		for i := base; i < base+size; i++ {
			p.priv[i] = 0
		}
		f.locals[in.B] = base | PrivTag

	default:
		return false, false, m.fail(p, f, "bad opcode %s", in.Op)
	}
	f.pc++
	return emitted, false, nil
}

func (m *Machine) emit(p *Proc, sink func(Ref), r Ref) {
	p.Refs++
	if sink != nil {
		sink(r)
	}
}

// load performs a 4- or 8-byte load, tracing shared accesses.
func (m *Machine) load(p *Proc, f *frame, addr int64, size int, sink func(Ref), emitted *bool) (int64, error) {
	if addr&PrivTag != 0 {
		off := addr &^ PrivTag
		if off < 0 || off+int64(size) > int64(len(p.priv)) {
			return 0, m.fail(p, f, "private access out of range %#x", off)
		}
		return rd(p.priv[off:], size), nil
	}
	if addr >= 0 && addr < nullPage {
		return 0, m.fail(p, f, "null pointer dereference (address %#x)", addr)
	}
	if addr <= 0 || addr+int64(size) > int64(len(m.mem)) {
		return 0, m.fail(p, f, "shared load out of range %#x", addr)
	}
	m.emit(p, sink, Ref{Proc: p.ID, Addr: addr, Size: int8(size), Write: false})
	*emitted = true
	return rd(m.mem[addr:], size), nil
}

func (m *Machine) store(p *Proc, f *frame, addr, v int64, size int, sink func(Ref), emitted *bool) error {
	if addr&PrivTag != 0 {
		off := addr &^ PrivTag
		if off < 0 || off+int64(size) > int64(len(p.priv)) {
			return m.fail(p, f, "private access out of range %#x", off)
		}
		wr(p.priv[off:], v, size)
		return nil
	}
	if addr >= 0 && addr < nullPage {
		return m.fail(p, f, "null pointer dereference (address %#x)", addr)
	}
	if addr <= 0 || addr+int64(size) > int64(len(m.mem)) {
		return m.fail(p, f, "shared store out of range %#x", addr)
	}
	wr(m.mem[addr:], v, size)
	m.emit(p, sink, Ref{Proc: p.ID, Addr: addr, Size: int8(size), Write: true})
	*emitted = true
	return nil
}

func rd(b []byte, size int) int64 {
	if size == 4 {
		return int64(int32(binary.LittleEndian.Uint32(b)))
	}
	return int64(binary.LittleEndian.Uint64(b))
}

func wr(b []byte, v int64, size int) {
	if size == 4 {
		binary.LittleEndian.PutUint32(b, uint32(v))
	} else {
		binary.LittleEndian.PutUint64(b, uint64(v))
	}
}

// strideOf resolves the element stride of the allocation containing
// addr (fallback: the static element size).
func (m *Machine) strideOf(addr, fallback int64) int64 {
	var table []allocEntry
	if addr >= m.prog.ArenaBase {
		pid := (addr - m.prog.ArenaBase) / m.prog.ArenaSize
		if pid >= 0 && int(pid) < m.nprocs {
			table = m.arenaAllocs[pid]
		}
	} else if addr >= m.prog.HeapBase {
		table = m.heapAllocs
	} else {
		return fallback // pointers into globals do not occur, but be safe
	}
	i := sort.Search(len(table), func(i int) bool { return table[i].start > addr })
	if i > 0 && addr < table[i-1].end {
		return table[i-1].stride
	}
	return fallback
}

func b2i(b bool) int64 {
	if b {
		return 1
	}
	return 0
}

func pf(v int64) float64 { return math.Float64frombits(uint64(v)) }
func fp(f float64) int64 { return int64(math.Float64bits(f)) }

func align64(v, a int64) int64 {
	if a <= 1 {
		return v
	}
	return (v + a - 1) / a * a
}
