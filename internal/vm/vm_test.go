package vm_test

import (
	"testing"

	"falseshare/internal/core"
	"falseshare/internal/vm"
)

// run compiles and executes src with nprocs processes, returning the
// machine and the collected trace.
func run(t *testing.T, src string, nprocs int) (*vm.Machine, []vm.Ref, *core.Program) {
	t.Helper()
	prog, err := core.Compile(src, core.Options{Nprocs: nprocs, BlockSize: 64})
	if err != nil {
		t.Fatalf("compile: %v", err)
	}
	return runProgram(t, prog, nprocs)
}

func runProgram(t *testing.T, prog *core.Program, nprocs int) (*vm.Machine, []vm.Ref, *core.Program) {
	t.Helper()
	bc, err := vm.Compile(prog.File, prog.Info, prog.Layout, nprocs)
	if err != nil {
		t.Fatalf("vm compile: %v", err)
	}
	m := vm.New(bc)
	var trace []vm.Ref
	if err := m.Run(func(r vm.Ref) { trace = append(trace, r) }); err != nil {
		t.Fatalf("run: %v", err)
	}
	return m, trace, prog
}

func globalInt(t *testing.T, m *vm.Machine, prog *core.Program, name string, idx ...int64) int64 {
	t.Helper()
	vl := prog.Layout.Var(name)
	if vl == nil {
		t.Fatalf("no layout for %q", name)
	}
	return m.ReadInt(vl.Address(idx))
}

func TestArithmeticAndControlFlow(t *testing.T) {
	src := `
shared int out[8];
int fib(int n) {
    if (n < 2) { return n; }
    return fib(n - 1) + fib(n - 2);
}
void main() {
    if (pid == 0) {
        out[0] = fib(10);
        out[1] = 7 % 3;
        out[2] = (2 + 3) * 4;
        out[3] = 17 / 5;
        out[4] = -5;
        out[5] = !0;
        out[6] = 1 < 2 && 3 > 2;
        out[7] = 0 || 2 == 2;
    }
}
`
	m, _, prog := run(t, src, 2)
	want := []int64{55, 1, 20, 3, -5, 1, 1, 1}
	for i, w := range want {
		if got := globalInt(t, m, prog, "out", int64(i)); got != w {
			t.Errorf("out[%d] = %d, want %d", i, got, w)
		}
	}
}

func TestDoubleArithmetic(t *testing.T) {
	src := `
shared double d[4];
void main() {
    if (pid == 0) {
        d[0] = 1.5 + 2.25;
        d[1] = 10.0 / 4.0;
        d[2] = 3;
        d[3] = d[0] * 2.0;
    }
}
`
	m, _, prog := run(t, src, 1)
	vl := prog.Layout.Var("d")
	want := []float64{3.75, 2.5, 3.0, 7.5}
	for i, w := range want {
		if got := m.ReadDouble(vl.Address([]int64{int64(i)})); got != w {
			t.Errorf("d[%d] = %v, want %v", i, got, w)
		}
	}
}

func TestSPMDPartitioning(t *testing.T) {
	src := `
shared int a[64];
void main() {
    for (int i = pid; i < 64; i = i + nprocs) {
        a[i] = a[i] + i;
    }
}
`
	m, _, prog := run(t, src, 4)
	for i := int64(0); i < 64; i++ {
		if got := globalInt(t, m, prog, "a", i); got != i {
			t.Errorf("a[%d] = %d, want %d", i, got, i)
		}
	}
}

func TestBarrierOrdersPhases(t *testing.T) {
	src := `
shared int a[16];
shared int sum;
void main() {
    a[pid] = pid + 1;
    barrier;
    if (pid == 0) {
        for (int i = 0; i < nprocs; i = i + 1) {
            sum = sum + a[i];
        }
    }
}
`
	m, _, prog := run(t, src, 8)
	if got := globalInt(t, m, prog, "sum"); got != 36 {
		t.Errorf("sum = %d, want 36", got)
	}
	if m.Barriers() != 1 {
		t.Errorf("barrier episodes = %d, want 1", m.Barriers())
	}
}

func TestLockMutualExclusion(t *testing.T) {
	src := `
shared int counter;
lock l;
void main() {
    for (int i = 0; i < 100; i = i + 1) {
        acquire(l);
        counter = counter + 1;
        release(l);
    }
}
`
	m, trace, prog := run(t, src, 8)
	if got := globalInt(t, m, prog, "counter"); got != 800 {
		t.Errorf("counter = %d, want 800", got)
	}
	// Lock contention must generate spin reads of the lock word.
	lockAddr := prog.Layout.Var("l").Base
	spins := int64(0)
	for _, p := range m.Procs() {
		spins += p.Spins
	}
	if spins == 0 {
		t.Errorf("expected lock spinning under contention")
	}
	reads := 0
	for _, r := range trace {
		if r.Addr == lockAddr && !r.Write {
			reads++
		}
	}
	if reads < 800 {
		t.Errorf("lock reads = %d, want >= 800", reads)
	}
}

func TestHeapAllocationAndStructs(t *testing.T) {
	src := `
struct Node {
    int value;
    double weight;
    struct Node *next;
};
shared struct Node *head;
shared int total;
void main() {
    if (pid == 0) {
        for (int i = 0; i < 10; i = i + 1) {
            struct Node *n;
            n = alloc(struct Node);
            n->value = i;
            n->weight = 0.5;
            n->next = head;
            head = n;
        }
        struct Node *p;
        p = head;
        while (p != 0) {
            total = total + p->value;
            p = p->next;
        }
    }
}
`
	m, _, prog := run(t, src, 2)
	if got := globalInt(t, m, prog, "total"); got != 45 {
		t.Errorf("total = %d, want 45", got)
	}
}

func TestDynamicArrayViaPointer(t *testing.T) {
	src := `
shared int *data;
shared int sum;
void main() {
    if (pid == 0) {
        data = alloc(int, 32);
        for (int i = 0; i < 32; i = i + 1) {
            data[i] = i;
        }
    }
    barrier;
    if (pid == 1) {
        for (int i = 0; i < 32; i = i + 1) {
            sum = sum + data[i];
        }
    }
}
`
	m, _, prog := run(t, src, 2)
	if got := globalInt(t, m, prog, "sum"); got != 496 {
		t.Errorf("sum = %d, want 496", got)
	}
}

func TestLocalAndPrivateArrays(t *testing.T) {
	src := `
private int scratch[16];
shared int out[4];
int work() {
    int tmp[8];
    for (int i = 0; i < 8; i = i + 1) {
        tmp[i] = i * 2;
    }
    int s;
    s = 0;
    for (int i = 0; i < 8; i = i + 1) {
        s = s + tmp[i];
    }
    return s;
}
void main() {
    for (int i = 0; i < 16; i = i + 1) {
        scratch[i] = pid;
    }
    if (pid < 4) {
        out[pid] = work() + scratch[3];
    }
}
`
	m, trace, prog := run(t, src, 4)
	for p := int64(0); p < 4; p++ {
		if got := globalInt(t, m, prog, "out", p); got != 56+p {
			t.Errorf("out[%d] = %d, want %d", p, got, 56+p)
		}
	}
	// Private traffic must not appear in the shared trace: only out[]
	// writes are shared.
	for _, r := range trace {
		vl := prog.Layout.Var("out")
		if r.Addr < vl.Base || r.Addr >= vl.Base+vl.Total {
			t.Fatalf("unexpected shared ref at %#x", r.Addr)
		}
	}
}

func TestArenaAllocationIsPerProcess(t *testing.T) {
	src := `
shared int *slot[8];
shared int ok;
void main() {
    int *p;
    p = allocpp(int);
    *p = pid + 100;
    slot[pid] = p;
    barrier;
    if (pid == 0) {
        ok = 1;
        for (int q = 0; q < nprocs; q = q + 1) {
            if (*slot[q] != q + 100) {
                ok = 0;
            }
        }
    }
}
`
	m, _, prog := run(t, src, 8)
	if got := globalInt(t, m, prog, "ok"); got != 1 {
		t.Errorf("arena values wrong (ok=%d)", got)
	}
}

func TestRuntimeErrors(t *testing.T) {
	cases := []struct {
		name, src, want string
	}{
		{"bounds", `
shared int a[4];
void main() { a[7] = 1; }`, "out of range"},
		{"div0", `
shared int x;
void main() { x = 1 / (x - x); }`, "division by zero"},
		{"null", `
struct S { int v; };
shared struct S *p;
void main() { p->v = 1; }`, "null pointer"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			prog, err := core.Compile(tc.src, core.Options{Nprocs: 2, BlockSize: 64})
			if err != nil {
				t.Fatalf("compile: %v", err)
			}
			bc, err := vm.Compile(prog.File, prog.Info, prog.Layout, 2)
			if err != nil {
				t.Fatalf("vm compile: %v", err)
			}
			err = vm.New(bc).Run(nil)
			if err == nil {
				t.Fatalf("expected runtime error containing %q", tc.want)
			}
			re, ok := err.(*vm.RunError)
			if !ok {
				t.Fatalf("error type %T", err)
			}
			if re.Line == 0 {
				t.Errorf("runtime error lacks a source line: %v", err)
			}
			if !contains(err.Error(), tc.want) {
				t.Errorf("error %q does not contain %q", err, tc.want)
			}
		})
	}
}

func contains(s, sub string) bool {
	return len(s) >= len(sub) && (s == sub || len(sub) == 0 ||
		(len(s) > 0 && indexOf(s, sub) >= 0))
}

func indexOf(s, sub string) int {
	for i := 0; i+len(sub) <= len(s); i++ {
		if s[i:i+len(sub)] == sub {
			return i
		}
	}
	return -1
}

// TestTransformedProgramEquivalence is the key compiler-correctness
// property: restructuring must preserve program semantics.
func TestTransformedProgramEquivalence(t *testing.T) {
	src := `
struct Task {
    int work;
    struct Task *next;
};
shared int cell[16];
shared int hits[16];
shared double acc[200][8];
shared int result;
shared struct Task *queues[16];
lock sumlock;

void main() {
    // grouped vectors
    for (int i = 0; i < 50; i = i + 1) {
        cell[pid] = cell[pid] + 1;
        hits[pid] = hits[pid] + 2;
    }
    // transposed matrix
    for (int i = 0; i < 200; i = i + 1) {
        acc[i][pid] = acc[i][pid] + 1.0;
    }
    // indirection target
    struct Task *n;
    n = alloc(struct Task);
    n->work = 0;
    n->next = 0;
    queues[pid] = n;
    barrier;
    for (int i = 0; i < 100; i = i + 1) {
        struct Task *p;
        p = queues[pid];
        while (p != 0) {
            p->work = p->work + 1;
            p = p->next;
        }
    }
    barrier;
    acquire(sumlock);
    result = result + cell[pid] + hits[pid] + queues[pid]->work;
    release(sumlock);
}
`
	const nprocs = 8
	res, err := core.Restructure(src, core.Options{Nprocs: nprocs, BlockSize: 64})
	if err != nil {
		t.Fatalf("restructure: %v", err)
	}
	if len(res.Applied) == 0 {
		t.Fatalf("expected transformations:\n%s", res.Plan)
	}

	mOrig, _, _ := runProgram(t, res.Original, nprocs)
	mTrans, _, _ := runProgram(t, res.Transformed, nprocs)

	// result = sum over procs of (50 + 100 + 100) = 250*8.
	origRes := mOrig.ReadInt(res.Original.Layout.Var("result").Base)
	transRes := mTrans.ReadInt(res.Transformed.Layout.Var("result").Base)
	if origRes != transRes {
		t.Fatalf("semantics changed: original=%d transformed=%d", origRes, transRes)
	}
	if origRes != 250*nprocs {
		t.Errorf("result = %d, want %d", origRes, 250*nprocs)
	}
}
