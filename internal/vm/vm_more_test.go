package vm_test

import (
	"reflect"
	"testing"

	"falseshare/internal/core"
	"falseshare/internal/vm"
)

func TestForallExecution(t *testing.T) {
	src := `
shared int a[64];
shared int sum;
void main() {
    forall (int i = 0; i < 64) {
        a[i] = i * 2;
    }
    if (pid == 0) {
        for (int i = 0; i < 64; i = i + 1) {
            sum = sum + a[i];
        }
    }
}
`
	m, _, prog := run(t, src, 8)
	if got := globalInt(t, m, prog, "sum"); got != 64*63 {
		t.Errorf("sum = %d, want %d", got, 64*63)
	}
	if m.Barriers() != 1 {
		t.Errorf("forall must contribute its implicit barrier: %d", m.Barriers())
	}
}

func TestTraceDeterminism(t *testing.T) {
	src := `
shared int a[32];
lock l;
shared int c;
void main() {
    for (int i = pid; i < 32; i = i + nprocs) {
        a[i] = a[i] + 1;
    }
    barrier;
    acquire(l);
    c = c + 1;
    release(l);
}
`
	runOnce := func() []vm.Ref {
		prog, err := core.Compile(src, core.Options{Nprocs: 6, BlockSize: 64})
		if err != nil {
			t.Fatal(err)
		}
		bc, err := vm.Compile(prog.File, prog.Info, prog.Layout, 6)
		if err != nil {
			t.Fatal(err)
		}
		var trace []vm.Ref
		if err := vm.New(bc).Run(func(r vm.Ref) { trace = append(trace, r) }); err != nil {
			t.Fatal(err)
		}
		return trace
	}
	a, b := runOnce(), runOnce()
	if !reflect.DeepEqual(a, b) {
		t.Fatalf("trace nondeterministic: lengths %d vs %d", len(a), len(b))
	}
}

func TestNegativeDivisionTruncates(t *testing.T) {
	// parc follows C (and Go) truncated division.
	src := `
shared int out[4];
void main() {
    if (pid == 0) {
        int a;
        a = 0 - 7;
        out[0] = a / 2;
        out[1] = a % 2;
        out[2] = 7 / (0 - 2);
        out[3] = 7 % (0 - 2);
    }
}
`
	m, _, prog := run(t, src, 1)
	want := []int64{-3, -1, -3, 1}
	for i, w := range want {
		if got := globalInt(t, m, prog, "out", int64(i)); got != w {
			t.Errorf("out[%d] = %d, want %d", i, got, w)
		}
	}
}

func TestShortCircuitSideEffects(t *testing.T) {
	// The RHS of && must not be evaluated when the LHS is false —
	// observable through shared memory reference counts.
	src := `
shared int touched;
shared int flag;
int touch() {
    touched = touched + 1;
    return 1;
}
void main() {
    if (pid == 0) {
        if (flag == 1 && touch() == 1) {
            flag = 2;
        }
        if (flag == 0 || touch() == 1) {
            flag = 3;
        }
    }
}
`
	m, _, prog := run(t, src, 1)
	// First &&: flag==1 false, touch not called. Second ||: flag==0
	// true (flag still 0), touch not called.
	if got := globalInt(t, m, prog, "touched"); got != 0 {
		t.Errorf("touched = %d, want 0 (short circuit violated)", got)
	}
	if got := globalInt(t, m, prog, "flag"); got != 3 {
		t.Errorf("flag = %d, want 3", got)
	}
}

func TestNestedStructArrays(t *testing.T) {
	src := `
struct Inner {
    int v;
    int pad;
};
struct Outer {
    int id;
    struct Inner *in;
};
shared struct Outer *objs;
shared int total;
void main() {
    if (pid == 0) {
        objs = alloc(struct Outer, 5);
        for (int i = 0; i < 5; i = i + 1) {
            objs[i].id = i;
            objs[i].in = alloc(struct Inner);
            objs[i].in->v = i * 10;
        }
        for (int i = 0; i < 5; i = i + 1) {
            total = total + objs[i].id + objs[i].in->v;
        }
    }
}
`
	m, _, prog := run(t, src, 2)
	// ids sum to 10, inner values to 0+10+20+30+40 = 100.
	if got := globalInt(t, m, prog, "total"); got != 110 {
		t.Errorf("total = %d, want 110", got)
	}
}

func TestDeepRecursionFrames(t *testing.T) {
	src := `
shared int out;
int depth(int n) {
    int local[4];
    local[0] = n;
    if (n == 0) { return 0; }
    return local[0] + depth(n - 1);
}
void main() {
    if (pid == 0) {
        out = depth(100);
    }
}
`
	m, _, prog := run(t, src, 1)
	if got := globalInt(t, m, prog, "out"); got != 5050 {
		t.Errorf("out = %d, want 5050", got)
	}
}

func TestInstrBudget(t *testing.T) {
	src := `
shared int x;
void main() {
    while (1 == 1) {
        x = x + 1;
    }
}
`
	prog, err := core.Compile(src, core.Options{Nprocs: 1, BlockSize: 64})
	if err != nil {
		t.Fatal(err)
	}
	bc, err := vm.Compile(prog.File, prog.Info, prog.Layout, 1)
	if err != nil {
		t.Fatal(err)
	}
	m := vm.New(bc)
	m.MaxInstrs = 100000
	err = m.Run(nil)
	if err == nil || !contains(err.Error(), "budget") {
		t.Fatalf("expected budget error, got %v", err)
	}
}

func TestBarrierCountsAndPhases(t *testing.T) {
	src := `
shared int x;
void main() {
    for (int i = 0; i < 5; i = i + 1) {
        x = x + 1;
        barrier;
    }
}
`
	m, _, _ := run(t, src, 4)
	if m.Barriers() != 5 {
		t.Errorf("barrier episodes = %d, want 5", m.Barriers())
	}
}

func TestLockFairnessNoStarvation(t *testing.T) {
	// All processes must eventually acquire the contended lock.
	src := `
shared int got[16];
lock l;
void main() {
    for (int i = 0; i < 50; i = i + 1) {
        acquire(l);
        got[pid] = got[pid] + 1;
        release(l);
    }
}
`
	m, _, prog := run(t, src, 8)
	for p := int64(0); p < 8; p++ {
		if got := globalInt(t, m, prog, "got", p); got != 50 {
			t.Errorf("proc %d acquired %d times, want 50", p, got)
		}
	}
}

func TestDisasmReadable(t *testing.T) {
	src := `
shared int x;
void main() { x = 1 + 2; }
`
	prog, err := core.Compile(src, core.Options{Nprocs: 1, BlockSize: 64})
	if err != nil {
		t.Fatal(err)
	}
	bc, err := vm.Compile(prog.File, prog.Info, prog.Layout, 1)
	if err != nil {
		t.Fatal(err)
	}
	d := bc.Funcs[bc.Main].Disasm()
	for _, want := range []string{"func main", "push", "store4", "halt"} {
		if !contains(d, want) {
			t.Errorf("disasm missing %q:\n%s", want, d)
		}
	}
}

func TestPrivateGlobalsArePerProcess(t *testing.T) {
	src := `
private int mine;
shared int out[8];
void main() {
    mine = pid * 100;
    barrier;
    out[pid] = mine;
}
`
	m, _, prog := run(t, src, 8)
	for p := int64(0); p < 8; p++ {
		if got := globalInt(t, m, prog, "out", p); got != p*100 {
			t.Errorf("out[%d] = %d, want %d", p, got, p*100)
		}
	}
}

func TestPaddedHeapStrideLookup(t *testing.T) {
	// When a heap block is element-padded by directive, pointer
	// indexing must use the padded stride recorded at allocation.
	src := `
shared double *work;
shared double check;
void main() {
    if (pid == 0) {
        work = alloc(double, 8);
        for (int i = 0; i < 8; i = i + 1) {
            work[i] = i * 1.0;
        }
        check = work[5];
    }
}
`
	res, err := core.Restructure(src, core.Options{Nprocs: 2, BlockSize: 64})
	if err != nil {
		t.Fatal(err)
	}
	// Force the pad directive regardless of what the heuristics chose:
	// the VM consults it at the allocation site during code generation.
	res.Transformed.Dirs.PadHeapElem["work"] = 64
	m, _, _ := runProgram(t, res.Transformed, 2)
	if got := m.ReadDouble(res.Transformed.Layout.Var("check").Base); got != 5.0 {
		t.Errorf("check = %v, want 5.0", got)
	}
}
