package vm

import (
	"fmt"
	"math"

	"falseshare/internal/lang/ast"
	"falseshare/internal/lang/token"
	"falseshare/internal/lang/types"
	"falseshare/internal/layout"
)

// Compile translates a checked, laid-out parc program to bytecode.
func Compile(file *ast.File, info *types.Info, lay *layout.Layout, nprocs int) (*Program, error) {
	c := &compiler{
		file: file, info: info, lay: lay, nprocs: nprocs,
		prog: &Program{
			FuncID:    map[string]int{},
			SharedEnd: lay.End,
			HeapBase:  lay.HeapBase,
			ArenaBase: lay.ArenaBase,
			ArenaSize: lay.ArenaSize,
			Nprocs:    nprocs,
		},
		privAddr: map[string]int64{},
	}
	if err := c.layoutPrivate(); err != nil {
		return nil, err
	}
	for i, fn := range file.Funcs {
		c.prog.FuncID[fn.Name] = i
	}
	for _, fn := range file.Funcs {
		f, err := c.function(fn)
		if err != nil {
			return nil, err
		}
		c.prog.Funcs = append(c.prog.Funcs, f)
	}
	main, ok := c.prog.FuncID["main"]
	if !ok {
		return nil, fmt.Errorf("vm: no main")
	}
	c.prog.Main = main
	return c.prog, nil
}

type compiler struct {
	file   *ast.File
	info   *types.Info
	lay    *layout.Layout
	nprocs int
	prog   *Program

	privAddr map[string]int64 // private globals -> private-space offset

	// per-function state
	fn   *types.FuncInfo
	code []Instr
	line int
}

// layoutPrivate assigns private-space offsets to private globals.
func (c *compiler) layoutPrivate() error {
	off := int64(16) // keep 0 unused
	for _, g := range c.file.Globals {
		sym := c.info.Globals[g.Name]
		if sym == nil || sym.Storage != ast.Private {
			continue
		}
		size, err := c.lay.SizeOf(sym.Type)
		if err != nil {
			return err
		}
		align := int64(8)
		off = layout.RoundUp(off, align)
		c.privAddr[g.Name] = off
		off += size
	}
	// Headroom for per-frame local arrays.
	c.prog.PrivSize = layout.RoundUp(off, 8) + 1<<20
	return nil
}

func (c *compiler) emit(op Op, a, b int64) int {
	c.code = append(c.code, Instr{Op: op, A: a, B: b, Line: c.line})
	return len(c.code) - 1
}

func (c *compiler) at(pos token.Pos) {
	if pos.IsValid() {
		c.line = pos.Line
	}
}

func (c *compiler) errorf(pos token.Pos, format string, args ...any) error {
	return fmt.Errorf("vm: %s: %s", pos, fmt.Sprintf(format, args...))
}

func (c *compiler) function(fn *ast.FuncDecl) (*Func, error) {
	fi := c.info.Funcs[fn.Name]
	c.fn = fi
	c.code = nil
	if err := c.stmt(fn.Body); err != nil {
		return nil, err
	}
	if fn.Name == "main" {
		c.emit(OpHalt, 0, 0)
	} else {
		c.emit(OpRet, 0, 0)
	}
	return &Func{
		Name:    fn.Name,
		ID:      c.prog.FuncID[fn.Name],
		NParams: len(fi.Params),
		NLocals: len(fi.Locals),
		Code:    c.code,
	}, nil
}

// width returns the access width for a scalar type.
func width(t *types.Type) int64 {
	switch t.Kind {
	case types.Int, types.LockT:
		return 4
	default:
		return 8
	}
}

func (c *compiler) loadOp(t *types.Type) Op {
	if width(t) == 4 {
		return OpLoad4
	}
	return OpLoad8
}

func (c *compiler) storeOp(t *types.Type) Op {
	if width(t) == 4 {
		return OpStore4
	}
	return OpStore8
}

// ---------------------------------------------------------------------------
// Statements

func (c *compiler) stmt(s ast.Stmt) error {
	c.at(s.Pos())
	switch x := s.(type) {
	case *ast.BlockStmt:
		for _, st := range x.List {
			if err := c.stmt(st); err != nil {
				return err
			}
		}
		return nil

	case *ast.DeclStmt:
		sym := c.info.LocalDecls[x.Decl]
		if sym == nil {
			return c.errorf(x.P, "unresolved local %q", x.Decl.Name)
		}
		if sym.Type.Kind == types.Array {
			size, err := c.lay.SizeOf(sym.Type)
			if err != nil {
				return err
			}
			c.emit(OpLocalArr, size, int64(sym.Slot))
			return nil
		}
		if x.Init != nil {
			if err := c.exprAs(x.Init, sym.Type); err != nil {
				return err
			}
			c.emit(OpStoreLocal, int64(sym.Slot), 0)
		}
		return nil

	case *ast.AssignStmt:
		return c.assign(x)

	case *ast.ExprStmt:
		call, ok := x.X.(*ast.CallExpr)
		if !ok {
			return c.errorf(x.P, "expression statement must be a call")
		}
		if err := c.expr(call); err != nil {
			return err
		}
		if fi := c.info.Funcs[call.Name]; fi != nil && fi.Ret.Kind != types.Void {
			c.emit(OpPop, 0, 0)
		}
		return nil

	case *ast.IfStmt:
		if err := c.expr(x.Cond); err != nil {
			return err
		}
		jz := c.emit(OpJz, 0, 0)
		if err := c.stmt(x.Then); err != nil {
			return err
		}
		if x.Else != nil {
			jmp := c.emit(OpJmp, 0, 0)
			c.code[jz].A = int64(len(c.code))
			if err := c.stmt(x.Else); err != nil {
				return err
			}
			c.code[jmp].A = int64(len(c.code))
		} else {
			c.code[jz].A = int64(len(c.code))
		}
		return nil

	case *ast.WhileStmt:
		top := len(c.code)
		if err := c.expr(x.Cond); err != nil {
			return err
		}
		jz := c.emit(OpJz, 0, 0)
		if err := c.stmt(x.Body); err != nil {
			return err
		}
		c.emit(OpJmp, int64(top), 0)
		c.code[jz].A = int64(len(c.code))
		return nil

	case *ast.ForStmt:
		if x.Init != nil {
			if err := c.stmt(x.Init); err != nil {
				return err
			}
		}
		top := len(c.code)
		jz := -1
		if x.Cond != nil {
			if err := c.expr(x.Cond); err != nil {
				return err
			}
			jz = c.emit(OpJz, 0, 0)
		}
		if err := c.stmt(x.Body); err != nil {
			return err
		}
		if x.Post != nil {
			if err := c.stmt(x.Post); err != nil {
				return err
			}
		}
		c.emit(OpJmp, int64(top), 0)
		if jz >= 0 {
			c.code[jz].A = int64(len(c.code))
		}
		return nil

	case *ast.ReturnStmt:
		if x.X != nil {
			if err := c.exprAs(x.X, c.fn.Ret); err != nil {
				return err
			}
			c.emit(OpRetV, 0, 0)
		} else {
			c.emit(OpRet, 0, 0)
		}
		return nil

	case *ast.BarrierStmt:
		c.emit(OpBarrier, 0, 0)
		return nil

	case *ast.AcquireStmt:
		if err := c.addr(x.Lock); err != nil {
			return err
		}
		c.emit(OpLockAcq, 0, 0)
		return nil

	case *ast.ReleaseStmt:
		if err := c.addr(x.Lock); err != nil {
			return err
		}
		c.emit(OpLockRel, 0, 0)
		return nil
	}
	return c.errorf(s.Pos(), "unhandled statement")
}

// assign compiles LHS = RHS.
func (c *compiler) assign(x *ast.AssignStmt) error {
	lt := c.info.TypeOf(x.LHS)
	if lt == nil {
		return c.errorf(x.P, "untyped assignment target")
	}
	// Local scalar: store to slot.
	if id, ok := x.LHS.(*ast.Ident); ok {
		sym := c.info.Uses[id]
		if sym != nil && (sym.Kind == types.LocalVar || sym.Kind == types.ParamVar) {
			if err := c.exprAs(x.RHS, lt); err != nil {
				return err
			}
			c.emit(OpStoreLocal, int64(sym.Slot), 0)
			return nil
		}
	}
	// Heap element padding: g = alloc(T, n) where g has a pad
	// directive takes a padded element stride.
	if id, ok := x.LHS.(*ast.Ident); ok {
		if al, ok2 := x.RHS.(*ast.AllocExpr); ok2 {
			if pad, ok3 := c.lay.Dirs.PadHeapElem[id.Name]; ok3 && pad > 0 {
				if err := c.alloc(al, pad); err != nil {
					return err
				}
				return c.storeTo(x.LHS, lt)
			}
		}
	}
	if err := c.exprAs(x.RHS, lt); err != nil {
		return err
	}
	return c.storeTo(x.LHS, lt)
}

// storeTo emits the address computation and store for an lvalue whose
// value is already on the stack.
func (c *compiler) storeTo(lhs ast.Expr, lt *types.Type) error {
	if err := c.addr(lhs); err != nil {
		return err
	}
	c.emit(c.storeOp(lt), 0, 0)
	return nil
}

// ---------------------------------------------------------------------------
// Expressions

// exprAs compiles e and converts the result to type want (int ->
// double promotion only).
func (c *compiler) exprAs(e ast.Expr, want *types.Type) error {
	if err := c.expr(e); err != nil {
		return err
	}
	et := c.info.TypeOf(e)
	if want != nil && want.Kind == types.Double && et != nil && et.Kind == types.Int {
		c.emit(OpI2F, 0, 0)
	}
	return nil
}

func (c *compiler) expr(e ast.Expr) error {
	c.at(e.Pos())
	switch x := e.(type) {
	case *ast.IntLit:
		c.emit(OpPush, x.Value, 0)
		return nil
	case *ast.FloatLit:
		c.emit(OpPush, int64(math.Float64bits(x.Value)), 0)
		return nil
	case *ast.PidExpr:
		c.emit(OpPushPid, 0, 0)
		return nil
	case *ast.NprocsExpr:
		c.emit(OpPushNP, 0, 0)
		return nil

	case *ast.Ident:
		sym := c.info.Uses[x]
		if sym == nil {
			return c.errorf(x.P, "unresolved %q", x.Name)
		}
		switch sym.Kind {
		case types.LocalVar, types.ParamVar:
			if sym.Type.Kind == types.Array {
				// Array-valued local: its slot holds the private base
				// address (set by OpLocalArr).
				c.emit(OpLoadLocal, int64(sym.Slot), 0)
				return nil
			}
			c.emit(OpLoadLocal, int64(sym.Slot), 0)
			return nil
		case types.GlobalVar:
			if sym.Type.Kind == types.Array {
				return c.addr(x) // base address as value (index bases)
			}
			if err := c.addr(x); err != nil {
				return err
			}
			c.emit(c.loadOp(sym.Type), 0, 0)
			return nil
		}
		return c.errorf(x.P, "cannot evaluate %q", x.Name)

	case *ast.UnaryExpr:
		if err := c.expr(x.X); err != nil {
			return err
		}
		t := c.info.TypeOf(x.X)
		switch x.Op {
		case token.MINUS:
			if t.Kind == types.Double {
				c.emit(OpNegF, 0, 0)
			} else {
				c.emit(OpNegI, 0, 0)
			}
		case token.NOT:
			c.emit(OpNot, 0, 0)
		}
		return nil

	case *ast.DerefExpr:
		if err := c.expr(x.X); err != nil {
			return err
		}
		t := c.info.TypeOf(e)
		c.emit(c.loadOp(t), 0, 0)
		return nil

	case *ast.BinaryExpr:
		return c.binary(x)

	case *ast.IndexExpr, *ast.FieldExpr:
		if err := c.addr(e); err != nil {
			return err
		}
		t := c.info.TypeOf(e)
		if t.Kind == types.Array {
			return nil // row base address
		}
		c.emit(c.loadOp(t), 0, 0)
		return nil

	case *ast.CallExpr:
		fi := c.info.Funcs[x.Name]
		if fi == nil {
			return c.errorf(x.P, "unknown function %q", x.Name)
		}
		for i, arg := range x.Args {
			var want *types.Type
			if i < len(fi.Params) {
				want = fi.Params[i].Type
			}
			if err := c.exprAs(arg, want); err != nil {
				return err
			}
		}
		c.emit(OpCall, int64(c.prog.FuncID[x.Name]), 0)
		return nil

	case *ast.AllocExpr:
		return c.alloc(x, 0)
	}
	return c.errorf(e.Pos(), "unhandled expression")
}

// alloc compiles an allocation; padTo > 0 pads the element stride.
func (c *compiler) alloc(x *ast.AllocExpr, padTo int64) error {
	t := c.resolveAllocType(x.Type)
	if t == nil {
		return c.errorf(x.P, "cannot resolve allocation type %s", x.Type)
	}
	size, err := c.lay.SizeOf(t)
	if err != nil {
		return err
	}
	stride := size
	if padTo > 0 {
		stride = layout.RoundUp(stride, padTo)
	}
	onStack := int64(0)
	if x.Count != nil {
		if err := c.expr(x.Count); err != nil {
			return err
		}
		onStack = 1
	}
	op := OpAllocHeap
	if x.PerProc {
		op = OpAllocArena
	}
	// B packs the count-on-stack flag with the required alignment
	// (padded heap blocks must start on the padding boundary).
	c.emit(op, stride, onStack|padTo<<1)
	return nil
}

// resolveAllocType maps a syntactic allocation type to semantics.
func (c *compiler) resolveAllocType(t *ast.TypeExpr) *types.Type {
	var base *types.Type
	if t.Struct {
		si := c.info.Structs[t.Name]
		if si == nil {
			return nil
		}
		base = &types.Type{Kind: types.StructK, Struct: si}
	} else {
		switch t.Name {
		case "int":
			base = types.IntType
		case "double":
			base = types.DoubleType
		default:
			return nil
		}
	}
	for i := 0; i < t.Stars; i++ {
		base = types.PointerTo(base)
	}
	return base
}

func (c *compiler) binary(x *ast.BinaryExpr) error {
	// Short-circuit logical operators.
	if x.Op == token.LAND || x.Op == token.LOR {
		if err := c.expr(x.X); err != nil {
			return err
		}
		if x.Op == token.LAND {
			// X && Y: if X is zero, result 0 without evaluating Y.
			jz := c.emit(OpJz, 0, 0)
			if err := c.expr(x.Y); err != nil {
				return err
			}
			c.emit(OpPush, 0, 0)
			c.emit(OpNeI, 0, 0)
			jend := c.emit(OpJmp, 0, 0)
			c.code[jz].A = int64(len(c.code))
			c.emit(OpPush, 0, 0)
			c.code[jend].A = int64(len(c.code))
			return nil
		}
		// X || Y
		jz := c.emit(OpJz, 0, 0)
		c.emit(OpPush, 1, 0)
		jend := c.emit(OpJmp, 0, 0)
		c.code[jz].A = int64(len(c.code))
		if err := c.expr(x.Y); err != nil {
			return err
		}
		c.emit(OpPush, 0, 0)
		c.emit(OpNeI, 0, 0)
		c.code[jend].A = int64(len(c.code))
		return nil
	}

	lt := c.info.TypeOf(x.X)
	rt := c.info.TypeOf(x.Y)
	double := (lt != nil && lt.Kind == types.Double) || (rt != nil && rt.Kind == types.Double)

	if err := c.expr(x.X); err != nil {
		return err
	}
	if double && lt != nil && lt.Kind == types.Int {
		c.emit(OpI2F, 0, 0)
	}
	if err := c.expr(x.Y); err != nil {
		return err
	}
	if double && rt != nil && rt.Kind == types.Int {
		c.emit(OpI2F, 0, 0)
	}

	type pair struct{ i, f Op }
	ops := map[token.Kind]pair{
		token.PLUS:  {OpAddI, OpAddF},
		token.MINUS: {OpSubI, OpSubF},
		token.STAR:  {OpMulI, OpMulF},
		token.SLASH: {OpDivI, OpDivF},
		token.EQ:    {OpEqI, OpEqF},
		token.NEQ:   {OpNeI, OpNeF},
		token.LT:    {OpLtI, OpLtF},
		token.LE:    {OpLeI, OpLeF},
		token.GT:    {OpGtI, OpGtF},
		token.GE:    {OpGeI, OpGeF},
	}
	if x.Op == token.PERCENT {
		c.emit(OpModI, 0, 0)
		return nil
	}
	p, ok := ops[x.Op]
	if !ok {
		return c.errorf(x.P, "unhandled operator %s", x.Op)
	}
	if double {
		c.emit(p.f, 0, 0)
	} else {
		c.emit(p.i, 0, 0)
	}
	return nil
}

// ---------------------------------------------------------------------------
// Addresses

// addr compiles the address of a designator onto the stack.
func (c *compiler) addr(e ast.Expr) error {
	c.at(e.Pos())
	switch x := e.(type) {
	case *ast.Ident:
		sym := c.info.Uses[x]
		if sym == nil {
			return c.errorf(x.P, "unresolved %q", x.Name)
		}
		switch {
		case sym.Kind == types.GlobalVar && sym.IsShared():
			vl := c.lay.Var(sym.Name)
			if vl == nil {
				return c.errorf(x.P, "no layout for %q", sym.Name)
			}
			c.emit(OpPush, vl.Base, 0)
			return nil
		case sym.Kind == types.GlobalVar: // private global
			off, ok := c.privAddr[sym.Name]
			if !ok {
				return c.errorf(x.P, "no private layout for %q", sym.Name)
			}
			c.emit(OpPush, off|PrivTag, 0)
			return nil
		case sym.Type.Kind == types.Array:
			// Local array: slot holds the tagged base.
			c.emit(OpLoadLocal, int64(sym.Slot), 0)
			return nil
		}
		return c.errorf(x.P, "cannot take address of %q", x.Name)

	case *ast.IndexExpr:
		bt := c.info.TypeOf(x.X)
		if bt == nil {
			return c.errorf(x.P, "untyped index base")
		}
		switch bt.Kind {
		case types.Array:
			if err := c.indexedArray(x); err != nil {
				return err
			}
			return nil
		case types.Pointer:
			if err := c.expr(x.X); err != nil {
				return err
			}
			if err := c.expr(x.Index); err != nil {
				return err
			}
			es, err := c.lay.SizeOf(bt.Elem)
			if err != nil {
				return err
			}
			c.emit(OpIndexPtr, es, 0)
			return nil
		}
		return c.errorf(x.P, "cannot index %s", bt)

	case *ast.FieldExpr:
		f := c.info.FieldUses[x]
		if f == nil {
			return c.errorf(x.P, "unresolved field %q", x.Name)
		}
		sl := c.lay.Struct(f.Parent.Name)
		if sl == nil {
			return c.errorf(x.P, "no layout for struct %q", f.Parent.Name)
		}
		off := sl.Offsets[f.Index]
		if x.Arrow {
			if err := c.expr(x.X); err != nil {
				return err
			}
		} else {
			if err := c.addr(x.X); err != nil {
				return err
			}
		}
		if off != 0 {
			c.emit(OpPush, off, 0)
			c.emit(OpAddI, 0, 0)
		}
		return nil

	case *ast.DerefExpr:
		return c.expr(x.X)
	}
	return c.errorf(e.Pos(), "expression is not addressable")
}

// indexedArray compiles the address of a (possibly multi-dimensional)
// array subscript using the layout's strides.
func (c *compiler) indexedArray(x *ast.IndexExpr) error {
	// Collect the chain to find the root.
	var indices []ast.Expr
	base := ast.Expr(x)
	for {
		ix, ok := base.(*ast.IndexExpr)
		if !ok {
			break
		}
		if bt := c.info.TypeOf(ix.X); bt != nil && bt.Kind == types.Pointer {
			break // handled by pointer path at this level
		}
		indices = append([]ast.Expr{ix.Index}, indices...)
		base = ix.X
	}

	// The root must be addressable: a global array, a local array, or
	// a field/pointer-indexed struct array.
	strides, dims, err := c.stridesFor(base, len(indices))
	if err != nil {
		return err
	}
	if err := c.addr(base); err != nil {
		return err
	}
	for k, idx := range indices {
		if err := c.expr(idx); err != nil {
			return err
		}
		if dims != nil && k < len(dims) && dims[k] > 0 {
			c.emit(OpCheck, dims[k], 0)
		}
		c.emit(OpPush, strides[k], 0)
		c.emit(OpMulI, 0, 0)
		c.emit(OpAddI, 0, 0)
	}
	return nil
}

// stridesFor computes byte strides for an index chain rooted at base.
func (c *compiler) stridesFor(base ast.Expr, n int) ([]int64, []int64, error) {
	// Global arrays use the padded layout strides.
	if id, ok := base.(*ast.Ident); ok {
		sym := c.info.Uses[id]
		if sym != nil && sym.Kind == types.GlobalVar && sym.IsShared() {
			vl := c.lay.Var(sym.Name)
			if vl == nil {
				return nil, nil, c.errorf(id.P, "no layout for %q", sym.Name)
			}
			if len(vl.Strides) < n {
				return nil, nil, c.errorf(id.P, "rank mismatch on %q", sym.Name)
			}
			return vl.Strides[:n], vl.Dims[:n], nil
		}
	}
	// Other bases (private/local arrays, array fields): natural
	// (unpadded) strides from the type.
	t := c.info.TypeOf(base)
	if t == nil {
		return nil, nil, c.errorf(base.Pos(), "untyped array base")
	}
	var strides, dims []int64
	cur := t
	for i := 0; i < n; i++ {
		if cur.Kind != types.Array {
			return nil, nil, c.errorf(base.Pos(), "rank mismatch")
		}
		rest, err := c.lay.SizeOf(cur.Elem)
		if err != nil {
			return nil, nil, err
		}
		d, ok := types.EvalConst(cur.Len, int64(c.nprocs))
		if !ok {
			d = 0
		}
		strides = append(strides, rest)
		dims = append(dims, d)
		cur = cur.Elem
	}
	return strides, dims, nil
}
