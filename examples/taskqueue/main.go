// Taskqueue: per-process work lists embedded in dynamically allocated
// records — the indirection scenario (Figure 2b) — plus contended
// queue locks. The example prints the restructured source so the
// field retyping, dereference insertion and arena allocation are
// visible, then compares miss rates.
//
//	go run ./examples/taskqueue
package main

import (
	"fmt"
	"log"

	"falseshare/internal/core"
	"falseshare/internal/experiments"
)

const program = `
struct Task {
    int ticks;
    int kind;
    struct Task *next;
};

shared struct Task *queue[64];
shared int finished;
lock qlock[64];

void main() {
    // Each process builds its own task list; allocations interleave
    // across processes, so records of different owners share blocks.
    int mine;
    mine = 512 / nprocs;
    for (int i = 0; i < mine; i = i + 1) {
        struct Task *t;
        t = alloc(struct Task);
        t->kind = i % 5;
        t->next = queue[pid];
        queue[pid] = t;
    }
    barrier;
    // Process the list repeatedly, bumping each task's tick count.
    for (int r = 0; r < 80; r = r + 1) {
        struct Task *p;
        acquire(qlock[pid]);
        p = queue[pid];
        release(qlock[pid]);
        while (p != 0) {
            p->ticks = p->ticks + p->kind;
            p = p->next;
        }
    }
    barrier;
    if (pid == 0) {
        finished = 1;
    }
}
`

func main() {
	const nprocs, block = 8, 128
	res, err := core.Restructure(program, core.Options{Nprocs: nprocs, BlockSize: block})
	if err != nil {
		log.Fatal(err)
	}

	fmt.Println("=== decisions ===")
	fmt.Print(res.Plan.String())
	fmt.Println("\n=== restructured source (note int* ticks, *(p->ticks), allocpp) ===")
	fmt.Print(res.Transformed.Source)

	for _, v := range []struct {
		name string
		prog *core.Program
	}{
		{"unoptimized", res.Original},
		{"compiler   ", res.Transformed},
	} {
		stats, err := experiments.MeasureBlocks(v.prog, []int64{block})
		if err != nil {
			log.Fatal(err)
		}
		st := stats[0]
		fmt.Printf("%s: missrate=%6.3f%%  false-sharing=%-7d invalidations=%d\n",
			v.name, 100*st.MissRate(), st.FalseShare, st.Invalidations)
	}
}
