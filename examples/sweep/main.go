// Sweep: the scalability experiment in miniature. Runs one bundled
// benchmark (default: radiosity) across processor counts on the
// KSR2-like machine model and prints the unoptimized vs compiler
// speedup curves — the paper's central result: false-sharing memory
// contention reverses the unoptimized speedup trend while the
// restructured program keeps scaling.
//
//	go run ./examples/sweep [-bench radiosity]
package main

import (
	"flag"
	"fmt"
	"log"

	"falseshare/internal/experiments"
	"falseshare/internal/sim/ksr"
	"falseshare/internal/workload"
)

func main() {
	bench := flag.String("bench", "radiosity", "benchmark to sweep")
	flag.Parse()

	b := workload.Get(*bench)
	if b == nil {
		log.Fatalf("unknown benchmark %q", *bench)
	}
	cfg := experiments.DefaultConfig()
	cfg.SweepCounts = []int{1, 2, 4, 8, 12, 16, 20, 28}

	curves, err := experiments.SpeedupCurves(b, cfg, ksr.DefaultConfig())
	if err != nil {
		log.Fatal(err)
	}
	fmt.Print(experiments.RenderCurves(curves))

	fmt.Println("\nplot (each column of stars is one version's speedup):")
	for _, c := range curves {
		fmt.Printf("\n%s version:\n", c.Version)
		for i, p := range c.Counts {
			stars := int(c.Speedup[i]*2 + 0.5)
			fmt.Printf("%3d procs |%s %.2f\n", p, repeat('*', stars), c.Speedup[i])
		}
	}
}

func repeat(ch byte, n int) string {
	if n < 0 {
		n = 0
	}
	if n > 80 {
		n = 80
	}
	b := make([]byte, n)
	for i := range b {
		b[i] = ch
	}
	return string(b)
}
