// Hardware: compares the paper's compile-time approach against the
// hardware alternative discussed in its related work (Dubois et al.):
// per-word invalidation. The hardware eliminates false-sharing misses
// completely; the compiler eliminates most of them — with no hardware
// change and fewer total misses than the unoptimized program under
// either protocol.
//
//	go run ./examples/hardware [-bench pverify]
package main

import (
	"flag"
	"fmt"
	"log"

	"falseshare/internal/core"
	"falseshare/internal/sim/cache"
	"falseshare/internal/vm"
	"falseshare/internal/workload"
)

func main() {
	bench := flag.String("bench", "pverify", "benchmark to compare on")
	flag.Parse()

	b := workload.Get(*bench)
	if b == nil {
		log.Fatalf("unknown benchmark %q", *bench)
	}
	const nprocs, block = 12, 128

	res, err := core.Restructure(b.Source(1), core.Options{Nprocs: nprocs, BlockSize: block})
	if err != nil {
		log.Fatal(err)
	}

	measure := func(prog *core.Program, wordInval bool) *cache.Stats {
		bc, err := vm.Compile(prog.File, prog.Info, prog.Layout, nprocs)
		if err != nil {
			log.Fatal(err)
		}
		cfg := cache.DefaultConfig(nprocs, block)
		cfg.WordInvalidate = wordInval
		sim, err := cache.New(cfg)
		if err != nil {
			log.Fatal(err)
		}
		if err := vm.New(bc).Run(func(r vm.Ref) {
			sim.Access(r.Proc, r.Addr, int64(r.Size), r.Write)
		}); err != nil {
			log.Fatal(err)
		}
		return sim.Stats()
	}

	rows := []struct {
		name  string
		stats *cache.Stats
	}{
		{"unoptimized + block invalidate", measure(res.Original, false)},
		{"unoptimized + WORD invalidate ", measure(res.Original, true)},
		{"compiler    + block invalidate", measure(res.Transformed, false)},
	}
	fmt.Printf("%s at %d procs, %dB blocks:\n\n", b.Name, nprocs, block)
	fmt.Printf("%-32s %10s %10s %10s %10s\n", "configuration", "misses", "false", "true", "inval")
	for _, r := range rows {
		fmt.Printf("%-32s %10d %10d %10d %10d\n",
			r.name, r.stats.Misses(), r.stats.FalseShare, r.stats.TrueShare, r.stats.Invalidations)
	}
	fmt.Println("\nThe hardware removes every false-sharing miss; the compiler removes")
	fmt.Println("most of them while also improving locality — on stock hardware.")
}
