// Quickstart: run the restructurer on a small explicitly parallel
// program and compare cache behaviour before and after.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"falseshare/internal/core"
	"falseshare/internal/experiments"
)

// The classic false-sharing victim: per-process counters packed into
// the same cache blocks.
const program = `
shared int counter[64];
shared int total;
lock sum_lock;

void main() {
    int rounds;
    rounds = 24000 / nprocs;
    for (int r = 0; r < rounds; r = r + 1) {
        counter[pid] = counter[pid] + 1;
    }
    barrier;
    acquire(sum_lock);
    total = total + counter[pid];
    release(sum_lock);
}
`

func main() {
	const nprocs, block = 8, 128

	res, err := core.Restructure(program, core.Options{Nprocs: nprocs, BlockSize: block})
	if err != nil {
		log.Fatal(err)
	}

	fmt.Println("=== transformation plan ===")
	fmt.Print(res.Plan.String())

	fmt.Println("\n=== transformed program ===")
	fmt.Print(res.Transformed.Source)

	fmt.Println("=== cache behaviour (8 procs, 128-byte blocks) ===")
	for _, v := range []struct {
		name string
		prog *core.Program
	}{
		{"unoptimized", res.Original},
		{"compiler   ", res.Transformed},
	} {
		stats, err := experiments.MeasureBlocks(v.prog, []int64{block})
		if err != nil {
			log.Fatal(err)
		}
		st := stats[0]
		fmt.Printf("%s: refs=%-8d missrate=%6.3f%%  false-sharing=%-7d other=%d\n",
			v.name, st.Refs, 100*st.MissRate(), st.FalseShare, st.Misses()-st.FalseShare)
	}
}
