// Histogram: the Figure 2a scenario. Two parallel vectors indexed by
// process id are grouped and transposed into an array of padded
// per-process records, and the example sweeps block sizes to show how
// false sharing grows with the coherence unit — and disappears after
// restructuring.
//
//	go run ./examples/histogram
package main

import (
	"fmt"
	"log"

	"falseshare/internal/core"
	"falseshare/internal/experiments"
)

const program = `
// Per-process histogram bins and per-process hit counters: the
// "cell"/"hits" pair from the paper's Figure 2a.
shared int bins[64];
shared int hits[64];
shared int input[4096];

void main() {
    if (pid == 0) {
        for (int i = 0; i < 4096; i = i + 1) {
            input[i] = (i * 7919 + 13) % 97;
        }
    }
    barrier;
    for (int i = pid; i < 4096; i = i + nprocs) {
        if (input[i] > 48) {
            bins[pid] = bins[pid] + input[i];
        }
        hits[pid] = hits[pid] + 1;
    }
}
`

func main() {
	const nprocs = 12
	blocks := []int64{8, 16, 32, 64, 128, 256}

	fmt.Println("block   unoptimized FS-rate   transformed FS-rate")
	for _, blk := range blocks {
		res, err := core.Restructure(program, core.Options{Nprocs: nprocs, BlockSize: blk})
		if err != nil {
			log.Fatal(err)
		}
		sn, err := experiments.MeasureBlocks(res.Original, []int64{blk})
		if err != nil {
			log.Fatal(err)
		}
		sc, err := experiments.MeasureBlocks(res.Transformed, []int64{blk})
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%5d   %18.3f%%   %18.3f%%\n",
			blk, 100*sn[0].FSRate(), 100*sc[0].FSRate())
	}

	// Show the structural rewrite once.
	res, err := core.Restructure(program, core.Options{Nprocs: nprocs, BlockSize: 128})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("\ndecisions at 128-byte blocks:")
	fmt.Print(res.Plan.String())
}
